#include "common/fault.h"

#include <functional>

#include "common/metrics.h"

namespace mqa {

FaultInjector& FaultInjector::Global() {
  // Intentionally leaked singleton (never destroyed, shared by threads).
  static FaultInjector* const kInjector =  // NOLINT(mqa-naked-new)
      new FaultInjector();
  return *kInjector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(&mu_);
  PointState& state =
      points_.insert_or_assign(point, PointState{}).first->second;
  state.spec = std::move(spec);
  // Per-point PRNG: the schedule of one point never depends on arming
  // order or on draws made by other points.
  state.rng = Rng(seed_ ^ std::hash<std::string>{}(point));
  state.armed = true;
  armed_points_.store(static_cast<int>(CountArmedLocked()),
                      std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  points_.erase(point);
  armed_points_.store(static_cast<int>(CountArmedLocked()),
                      std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(&mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  MutexLock lock(&mu_);
  seed_ = seed;
}

void FaultInjector::SetClock(Clock* clock) {
  MutexLock lock(&mu_);
  clock_ = clock;
}

FaultPointStats FaultInjector::stats(const std::string& point) const {
  MutexLock lock(&mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? FaultPointStats{} : it->second.stats;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [name, state] : points_) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

size_t FaultInjector::CountArmedLocked() const {
  size_t n = 0;
  for (const auto& [name, state] : points_) {
    if (state.armed) ++n;
  }
  return n;
}

Status FaultInjector::CheckSlow(std::string_view point,
                                double* partial_fraction) {
  double latency_ms = 0.0;
  Status injected = Status::OK();
  Clock* clock = nullptr;
  {
    MutexLock lock(&mu_);
    const auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return Status::OK();
    PointState& state = it->second;
    ++state.stats.hits;

    bool fires = state.stats.hits > state.spec.skip_first;
    if (fires && state.spec.every_nth > 0) {
      const uint64_t eligible = state.stats.hits - state.spec.skip_first;
      fires = eligible % state.spec.every_nth == 0;
    }
    if (fires && state.spec.probability < 1.0) {
      fires = state.rng.Bernoulli(state.spec.probability);
    }
    if (!fires) return Status::OK();

    ++state.stats.fires;
    if (state.spec.once ||
        (state.spec.max_fires > 0 &&
         state.stats.fires >= state.spec.max_fires)) {
      state.armed = false;
      armed_points_.store(static_cast<int>(CountArmedLocked()),
                          std::memory_order_relaxed);
    }
    latency_ms = state.spec.latency_ms;
    if (partial_fraction != nullptr && state.spec.partial_fraction >= 0.0 &&
        state.spec.partial_fraction <= 1.0) {
      *partial_fraction = state.spec.partial_fraction;
    }
    if (state.spec.code != StatusCode::kOk) {
      injected = Status::FromCode(state.spec.code,
                                  "[fault:" + std::string(point) + "] " +
                                      state.spec.message);
    }
    clock = clock_;
  }
  // Injected misbehaviour is observable: without these, a chaos run's
  // latency spikes and error storms would be invisible to any timing.
  MetricsRegistry::Global().GetCounter("fault/fires")->Increment();
  // The latency spike sleeps outside the lock so concurrent fault points
  // (and Arm/Disarm from a driver thread) never serialize behind it.
  if (latency_ms > 0.0) {
    MetricsRegistry::Global()
        .GetHistogram("fault/injected_latency_ms")
        ->Record(latency_ms);
    if (clock == nullptr) clock = SystemClock();
    clock->SleepForMillis(latency_ms);
  }
  if (!injected.ok()) {
    MetricsRegistry::Global().GetCounter("fault/injected_errors")->Increment();
  }
  return injected;
}

}  // namespace mqa
