#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sync.h"

namespace mqa {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

Mutex& LogMutex() {
  // Intentionally leaked so logging from static destructors stays safe.
  static Mutex* mu = new Mutex;  // NOLINT(mqa-naked-new)
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (!enabled_) return;
  // Keep only the basename so log lines stay short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  MutexLock lock(&LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace mqa
