#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mqa {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = ToLower(haystack);
  const std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace mqa
