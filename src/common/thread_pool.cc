#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/logging.h"

namespace mqa {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::unique_ptr<Task> task) {
  {
    MutexLock lock(&mu_);
    queue_.push(std::move(task));
  }
  cv_.NotifyOne();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto t = std::make_unique<Task>();
  t->fn = std::move(task);
  std::future<void> fut = t->done.get_future();
  Enqueue(std::move(t));
  return fut;
}

void ThreadPool::Post(std::function<void()> task) {
  auto t = std::make_unique<Task>();
  t->fn = std::move(task);
  t->detached = true;
  Enqueue(std::move(t));
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for EVERY chunk before propagating any exception: the chunks hold
  // `fn` by reference, so unwinding while siblings still run would let them
  // touch a destroyed callable. The first chunk failure (in completion
  // order) is rethrown once all chunks have finished.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Task> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task->fn();
      if (!task->detached) task->done.set_value();
    } catch (...) {
      if (task->detached) {
        // Post()ed tasks have no future to carry the exception.
        MQA_LOG(Error) << "detached pool task threw; exception dropped";
      } else {
        task->done.set_exception(std::current_exception());
      }
    }
  }
}

ThreadPool& DefaultThreadPool() {
  // Intentionally leaked so worker shutdown never races static destruction.
  static ThreadPool* pool =  // NOLINT(mqa-naked-new)
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace mqa
