#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace mqa {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  MQA_CHECK_GT(n, 0u) << " in Rng::NextUint64";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MQA_CHECK_LE(lo, hi) << " in Rng::UniformInt";
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard against log(0).
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(NextUint64(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  if (k >= n) return Permutation(n);
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<uint32_t> chosen;
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(NextUint64(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace mqa
