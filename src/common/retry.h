#ifndef MQA_COMMON_RETRY_H_
#define MQA_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace mqa {

/// Retry behaviour for one class of operations. Retries apply only to
/// statuses with Status::IsRetryable() (kUnavailable, kDeadlineExceeded,
/// kResourceExhausted); permanent errors surface immediately.
///
/// Backoff before attempt i (1-based; no backoff before the first) is
///   min(max_backoff_ms, initial_backoff_ms * multiplier^(i-2))
/// scaled by a deterministic seeded jitter drawn uniformly from
/// [1 - jitter_fraction, 1 + jitter_fraction]. Deadlines:
/// `per_attempt_deadline_ms` converts an attempt whose wall time (through
/// the Retrier's clock) exceeds the budget into kDeadlineExceeded — the
/// caller-side timeout abandoning a response that arrives too late;
/// `overall_deadline_ms` caps the whole retry loop including backoff.
struct RetryPolicy {
  int max_attempts = 3;             ///< total attempts (>= 1)
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  double jitter_fraction = 0.0;     ///< 0 = no jitter, 0.2 = +/-20%
  double per_attempt_deadline_ms = 0.0;  ///< 0 = unlimited
  double overall_deadline_ms = 0.0;      ///< 0 = unlimited
  uint64_t seed = 42;               ///< jitter determinism
};

/// The deterministic backoff sequence of a policy, attempt by attempt.
/// Exposed separately so tests assert the exact schedule and the chaos
/// demo can print it.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy);

  /// Delay before the next retry, in ms (first call = delay before
  /// attempt 2). Advances the internal jitter stream.
  double NextDelayMs();

  void Reset();

 private:
  RetryPolicy policy_;
  Rng rng_;
  int retries_issued_ = 0;
};

/// Counters of the most recent Retrier::Run (for telemetry and tests).
struct RetryStats {
  int attempts = 0;
  double total_backoff_ms = 0.0;
  Status last_error;  ///< last non-OK attempt status (OK when none failed)
};

/// Executes an operation under a RetryPolicy, sleeping between attempts
/// through the supplied Clock (tests pass a MockClock, so retry tests
/// never block). Not thread-safe; create one Retrier per call site or per
/// thread — it is cheap.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy, Clock* clock = nullptr);

  /// Runs `op` until it succeeds, fails permanently, or the policy is
  /// exhausted. Returns the final status; when attempts ran out, the last
  /// transient error is returned (with the attempt count appended).
  Status Run(const std::function<Status()>& op);

  /// Result-returning flavour.
  template <typename T>
  Result<T> Run(const std::function<Result<T>()>& op) {
    Result<T> out = Status::Internal("retry loop never ran");
    Status st = Run([&]() -> Status {
      out = op();
      return out.ok() ? Status::OK() : out.status();
    });
    if (st.ok()) return out;
    return st;
  }

  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Clock* clock_;
  BackoffSchedule schedule_;
  RetryStats stats_;
};

}  // namespace mqa

#endif  // MQA_COMMON_RETRY_H_
