#include "core/session.h"

namespace mqa {

Result<AnswerTurn> Session::Ask(const std::string& text) {
  UserQuery query;
  query.text = text;
  query.selected_object = selected_;
  return Run(std::move(query));
}

Result<AnswerTurn> Session::AskWithImage(const std::string& text,
                                         Payload image) {
  UserQuery query;
  query.text = text;
  query.uploaded_image = std::move(image);
  return Run(std::move(query));
}

Result<AnswerTurn> Session::Run(UserQuery query) {
  MQA_ASSIGN_OR_RETURN(AnswerTurn turn, coordinator_->Ask(query));
  last_results_ = turn.items;
  ++rounds_;
  return turn;
}

Status Session::Select(size_t rank) {
  if (rank >= last_results_.size()) {
    return Status::OutOfRange("no result at rank " + std::to_string(rank));
  }
  selected_ = last_results_[rank].id;
  return Status::OK();
}

void Session::Reset() {
  last_results_.clear();
  selected_.reset();
  rounds_ = 0;
  coordinator_->ResetDialogue();
}

}  // namespace mqa
