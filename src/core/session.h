#ifndef MQA_CORE_SESSION_H_
#define MQA_CORE_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/coordinator.h"

namespace mqa {

/// An interactive multi-round dialogue over a Coordinator — the QA panel's
/// behaviour: ask in text, click a result, refine, repeat. The clicked
/// result's image augments every subsequent query until a new selection or
/// Reset() (the paper's iterative refinement feedback loop).
class Session {
 public:
  /// `coordinator` is borrowed and must outlive the session.
  explicit Session(Coordinator* coordinator) : coordinator_(coordinator) {}

  /// One text round (uses the current selection, if any, as image context).
  Result<AnswerTurn> Ask(const std::string& text);

  /// One image-assisted round with a user-provided image payload.
  Result<AnswerTurn> AskWithImage(const std::string& text, Payload image);

  /// Selects result `rank` (0-based) from the last round as feedback.
  Status Select(size_t rank);

  /// Id of the currently selected object, if any.
  std::optional<uint64_t> selection() const { return selected_; }

  const std::vector<RetrievedItem>& last_results() const {
    return last_results_;
  }
  size_t rounds() const { return rounds_; }

  /// Clears the selection, results, and dialogue history.
  void Reset();

 private:
  Result<AnswerTurn> Run(UserQuery query);

  Coordinator* coordinator_;
  std::vector<RetrievedItem> last_results_;
  std::optional<uint64_t> selected_;
  size_t rounds_ = 0;
};

}  // namespace mqa

#endif  // MQA_CORE_SESSION_H_
