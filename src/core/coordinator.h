#ifndef MQA_CORE_COORDINATOR_H_
#define MQA_CORE_COORDINATOR_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/trace.h"
#include "core/answer_generator.h"
#include "core/config.h"
#include "core/query_executor.h"
#include "core/represent.h"
#include "core/status_monitor.h"
#include "encoder/sim_encoders.h"
#include "llm/query_rewriter.h"
#include "retrieval/factory.h"

namespace mqa {

/// One completed dialogue round as returned to the frontend.
struct AnswerTurn {
  std::string answer;                ///< the conversational reply
  std::vector<RetrievedItem> items;  ///< retrieved results (may be empty)
  RetrievalResult retrieval;         ///< raw retrieval telemetry
  /// True when any stage of this round ran in degraded mode (extractive
  /// fallback answer, dropped query modality, partial disk results, raw
  /// query text after a rewriter outage). Details in degradation_notes.
  bool degraded = false;
  std::vector<std::string> degradation_notes;
  /// Span tree of this round (null when observability.trace_turns is off).
  /// `trace->Render()` is the `--explain` breakdown; `trace->ToJson()` the
  /// machine-readable form.
  std::shared_ptr<Trace> trace;
};

/// The system's central nexus (Figure 2): owns the five backend components
/// and the data they exchange, and is the single reference point the
/// frontend talks to. Construction runs the offline pipeline —
/// preprocessing, vector representation (with optional weight learning)
/// and index construction — emitting status events along the way; Ask()
/// runs the online pipeline (query execution + answer generation).
class Coordinator {
 public:
  /// Builds the whole system from a configuration (generating the
  /// synthetic knowledge base from the world model).
  static Result<std::unique_ptr<Coordinator>> Create(const MqaConfig& config);

  /// Restores a system from persisted components (see core/persistence.h):
  /// the world is regenerated deterministically from `config`; knowledge
  /// base, encoded store and weights come from disk; `index_blob` (when
  /// non-null, and the framework is MUST over a flat graph) restores the
  /// index without a rebuild.
  static Result<std::unique_ptr<Coordinator>> CreateFromState(
      const MqaConfig& config, KnowledgeBase kb, VectorStore store,
      std::vector<float> weights, std::istream* index_blob);

  /// Per-conversation dialogue state, externalized so a serving layer can
  /// keep one per session: the query rewriter's topical history and the
  /// prompt builder's turn history. The coordinator's own Ask() keeps
  /// using its internal (single-conversation) state.
  struct DialogueState {
    ContextualQueryRewriter rewriter;
    PromptBuilder prompt;

    void Clear() {
      rewriter.Clear();
      prompt.ClearHistory();
    }
  };

  /// Runs one QA round end to end.
  Result<AnswerTurn> Ask(const UserQuery& query);

  /// Ask() against caller-owned dialogue state. With distinct `state`
  /// objects this is safe to call from concurrent threads (the serving
  /// path): all per-turn mutable state lives in `state`, and concurrent
  /// framework access must be serialized by execution hooks (see
  /// QueryExecutor::SetExecutionHooks; the Server installs batchers).
  /// `state` must be non-null and externally serialized per conversation.
  Result<AnswerTurn> AskWithState(const UserQuery& query,
                                  DialogueState* state);

  /// Ingests one new multi-modal object while the system is live: the
  /// object enters the knowledge base, is encoded, and is linked into the
  /// index incrementally (routed to the least-loaded shard when sharding
  /// is on). Returns its id. Only the MUST framework — plain or sharded —
  /// over a mutable index supports this; others need SetFramework.
  Result<uint64_t> IngestObject(Object object);

  /// Deletes one object while the system is live. The object is
  /// tombstoned — gone from every subsequent retrieval immediately — and
  /// physically evicted later by compaction. With
  /// config.compaction.auto_compact, crossing the garbage-ratio threshold
  /// triggers a best-effort compaction right here (guarded by the
  /// compaction breaker; a failure degrades, never fails the delete).
  Status RemoveObject(uint64_t id);

  /// Fraction of the knowledge base that is tombstoned.
  double GarbageRatio() const;

  /// Physically evicts tombstones now: the knowledge base, encoded store
  /// and index are rewritten without the deleted objects, and ids are
  /// re-densified. MUST over a flat graph compacts in place (adjacency
  /// splicing, no distance computations); every other framework rebuilds
  /// its index over the compacted corpus. No-op when nothing is deleted.
  Status CompactNow();

  /// The compaction breaker's state, and how many compactions completed
  /// (test/bench introspection).
  BreakerState compaction_breaker_state() const;
  uint64_t compactions() const { return compactions_; }

  /// Swaps the retrieval framework ("must"/"mr"/"je") over the already
  /// encoded corpus — the configuration panel's comparative switch.
  Status SetFramework(const std::string& name);

  /// Replaces the default modality weights of the active framework.
  Status SetWeights(std::vector<float> weights);

  StatusMonitor& monitor() { return monitor_; }
  const MqaConfig& config() const { return config_; }
  const World& world() const { return *world_; }
  const KnowledgeBase& kb() const { return *kb_; }
  const EncoderSet& encoders() const { return *encoders_; }
  RetrievalFramework* framework() { return framework_.get(); }
  const std::vector<float>& weights() const { return represented_.weights; }
  const VectorStore& store() const { return *represented_.store; }
  const RetrievalFramework* framework_const() const {
    return framework_.get();
  }
  const WeightTrainReport& train_report() const {
    return represented_.train_report;
  }
  const BuildReport& build_report() const { return build_report_; }
  AnswerGenerator* answer_generator() { return answer_generator_.get(); }
  /// Null when the knowledge base is disabled (LLM-only mode).
  QueryExecutor* executor() { return executor_.get(); }

  /// Span tree of the offline build pipeline (null when
  /// observability.trace_build is off).
  const Trace* build_trace() const { return build_trace_.get(); }

  /// Resets the dialogue history (a fresh conversation).
  void ResetDialogue();

 private:
  Coordinator() = default;

  /// The body of Ask(): runs under the turn's ambient trace. A null
  /// `state` uses the coordinator's single-conversation members.
  Result<AnswerTurn> RunTurn(const UserQuery& query, DialogueState* state);

  /// Auto-compaction gate: threshold + interval throttle + breaker. Only
  /// ever best-effort — failures surface as degraded status events.
  void MaybeCompact();

  /// Builds the compaction breaker from config (Create/CreateFromState).
  void InitCompaction();

  MqaConfig config_;
  StatusMonitor monitor_;
  std::unique_ptr<World> world_;
  std::unique_ptr<KnowledgeBase> kb_;
  std::unique_ptr<EncoderSet> encoders_;
  RepresentedCorpus represented_;
  std::unique_ptr<RetrievalFramework> framework_;
  BuildReport build_report_;
  std::shared_ptr<Trace> build_trace_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<AnswerGenerator> answer_generator_;
  ContextualQueryRewriter rewriter_;
  std::unique_ptr<CircuitBreaker> compaction_breaker_;
  int64_t last_compaction_micros_ = 0;  ///< 0 = never compacted
  uint64_t compactions_ = 0;
};

}  // namespace mqa

#endif  // MQA_CORE_COORDINATOR_H_
