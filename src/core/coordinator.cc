#include "core/coordinator.h"

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/tombstones.h"
#include <istream>
#include <optional>

#include "llm/resilient_llm.h"
#include "llm/sim_llm.h"
#include "retrieval/must.h"
#include "shard/sharded_retrieval.h"

namespace mqa {

namespace {

LlmResilienceConfig MakeLlmResilience(const ResilienceOptions& r) {
  LlmResilienceConfig out;
  out.retry.max_attempts = r.llm_max_attempts;
  out.retry.initial_backoff_ms = r.llm_initial_backoff_ms;
  out.retry.backoff_multiplier = r.llm_backoff_multiplier;
  out.retry.max_backoff_ms = r.llm_max_backoff_ms;
  out.retry.per_attempt_deadline_ms = r.llm_per_attempt_deadline_ms;
  out.retry.overall_deadline_ms = r.llm_overall_deadline_ms;
  out.breaker.failure_threshold = r.breaker_failure_threshold;
  out.breaker.open_duration_ms = r.breaker_open_ms;
  out.breaker.half_open_successes = r.breaker_half_open_successes;
  return out;
}

RetryPolicy MakeEncoderRetry(const ResilienceOptions& r) {
  RetryPolicy p;
  p.max_attempts = r.encoder_max_attempts;
  p.initial_backoff_ms = r.encoder_initial_backoff_ms;
  return p;
}

/// Wraps the LLM in the resilience decorator when enabled. A null model
/// stays null (no-LLM mode needs no breaker).
std::unique_ptr<LanguageModel> MaybeWrapLlm(std::unique_ptr<LanguageModel> llm,
                                            const ResilienceOptions& r) {
  if (!r.enable || llm == nullptr) return llm;
  return std::make_unique<ResilientLlm>(std::move(llm), MakeLlmResilience(r),
                                        r.clock);
}

/// Builds the configured retrieval framework: the single-index path, or —
/// with config.shard.enable — the fault-isolated sharded fan-out layer
/// over per-shard instances of the same framework. The shard layer
/// inherits the resilience clock unless it carries its own, so MockClock
/// tests drive breaker cool-downs and deadline slices from one source.
Result<std::unique_ptr<RetrievalFramework>> BuildFramework(
    const MqaConfig& config, std::shared_ptr<const VectorStore> store,
    std::vector<float> weights, BuildReport* report) {
  if (config.shard.enable) {
    ShardOptions options = config.shard;
    if (options.clock == nullptr) options.clock = config.resilience.clock;
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardedRetrieval> sharded,
        ShardedRetrieval::Create(config.framework, std::move(store),
                                 std::move(weights), config.index, options,
                                 report));
    return std::unique_ptr<RetrievalFramework>(std::move(sharded));
  }
  MQA_ASSIGN_OR_RETURN(
      std::unique_ptr<RetrievalFramework> fw,
      CreateRetrievalFramework(config.framework, std::move(store),
                               std::move(weights), config.index, report));
  if (config.resilience.clock != nullptr) {
    fw->SetClock(config.resilience.clock);
  }
  return fw;
}

}  // namespace

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    const MqaConfig& config) {
  std::unique_ptr<Coordinator> c(new Coordinator());
  c->config_ = config;
  c->InitCompaction();

  // Pin the distance-kernel dispatch before any index work. "auto" leaves
  // resolution to the environment (MQA_SIMD_LEVEL) and CPUID; an explicit
  // request above the CPU's ceiling clamps down with a note.
  if (config.simd_level != "auto" && !config.simd_level.empty()) {
    std::string note;
    const SimdLevel level =
        ResolveSimdLevel(config.simd_level, DetectedSimdLevel(), &note);
    if (!note.empty()) MQA_LOG(Warning) << "simd: " << note;
    MQA_RETURN_NOT_OK(SetSimdLevel(level));
  }
  MQA_LOG(Info) << "simd: distance kernels at level "
                << SimdLevelName(ActiveSimdLevel());

  // Trace the offline pipeline: stage spans below nest under build/root,
  // and DAG stages dispatched to pool threads re-attach via the ambient
  // trace (see DagPipeline::Run).
  if (config.observability.trace_build) {
    c->build_trace_ =
        std::make_shared<Trace>("offline-build", config.observability.clock);
  }
  std::optional<ScopedTrace> scoped_trace;
  if (c->build_trace_ != nullptr) scoped_trace.emplace(c->build_trace_.get());
  Span build_span("coordinator/build");

  // --- Data preprocessing: build the world and ingest the corpus. ---
  Timer timer;
  MQA_ASSIGN_OR_RETURN(World world, World::Create(config.world));
  c->world_ = std::make_unique<World>(std::move(world));
  if (config.enable_knowledge_base) {
    if (config.corpus_size == 0) {
      return Status::InvalidArgument("corpus_size must be > 0");
    }
    Span span("build/preprocess");
    MQA_ASSIGN_OR_RETURN(
        KnowledgeBase kb,
        c->world_->GenerateCorpus(config.corpus_size, config.kb_name));
    c->kb_ = std::make_unique<KnowledgeBase>(std::move(kb));
    c->monitor_.Emit(
        ComponentStage::kDataPreprocessing,
        "ingested " + std::to_string(c->kb_->size()) + " objects, " +
            std::to_string(c->kb_->schema().num_modalities()) + " modalities",
        timer.ElapsedMillis());
  } else {
    c->monitor_.Emit(ComponentStage::kDataPreprocessing,
                     "knowledge base disabled: LLM-only answering");
  }

  // --- Answer generation (LLM plumbing is independent of the KB). ---
  std::unique_ptr<LanguageModel> llm;
  if (config.llm == "sim-llm") {
    llm = std::make_unique<SimLlm>(config.seed);
  } else if (config.llm != "none") {
    return Status::InvalidArgument("unknown llm: " + config.llm);
  }
  const std::string llm_label = llm ? llm->name() : "none";
  llm = MaybeWrapLlm(std::move(llm), config.resilience);
  c->answer_generator_ =
      std::make_unique<AnswerGenerator>(std::move(llm), config.temperature);

  if (!config.enable_knowledge_base) {
    c->monitor_.Emit(ComponentStage::kAnswerGeneration,
                     "llm: " + llm_label + ", temperature " +
                         FormatDouble(config.temperature, 2));
    return c;
  }

  // --- Vector representation: encoders + optional weight learning. ---
  timer.Reset();
  {
    Span span("build/represent");
    MQA_ASSIGN_OR_RETURN(
        EncoderSet encoders,
        MakeSimEncoderSet(c->world_.get(), config.encoder_preset,
                          config.embedding_dim));
    c->encoders_ = std::make_unique<EncoderSet>(std::move(encoders));
    MQA_ASSIGN_OR_RETURN(
        c->represented_,
        RepresentCorpus(*c->kb_, *c->encoders_, config.learn_weights,
                        config.learner, config.num_training_triplets,
                        c->world_.get()));
  }
  {
    std::string msg = "encoder " + config.encoder_preset + ", dim " +
                      std::to_string(config.embedding_dim) + ", weights [";
    for (size_t m = 0; m < c->represented_.weights.size(); ++m) {
      if (m > 0) msg += ", ";
      msg += FormatDouble(c->represented_.weights[m], 3);
    }
    msg += config.learn_weights ? "] (learned)" : "] (uniform)";
    c->monitor_.Emit(ComponentStage::kVectorRepresentation, msg,
                     timer.ElapsedMillis());
  }

  // --- Index construction through the retrieval framework. ---
  timer.Reset();
  {
    Span span("build/index");
    MQA_ASSIGN_OR_RETURN(
        c->framework_,
        BuildFramework(config, c->represented_.store, c->represented_.weights,
                       &c->build_report_));
  }
  c->monitor_.Emit(ComponentStage::kIndexConstruction,
                   "framework " + c->framework_->name() + ", index " +
                       config.index.algorithm,
                   timer.ElapsedMillis());

  c->executor_ = std::make_unique<QueryExecutor>(
      c->kb_.get(), c->encoders_.get(), c->framework_.get());
  if (config.resilience.enable) {
    c->executor_->EnableResilience(MakeEncoderRetry(config.resilience),
                                   config.resilience.clock);
  }
  c->monitor_.Emit(ComponentStage::kAnswerGeneration,
                   "llm: " + llm_label + ", temperature " +
                       FormatDouble(config.temperature, 2));
  return c;
}

Result<AnswerTurn> Coordinator::Ask(const UserQuery& query) {
  return AskWithState(query, nullptr);
}

Result<AnswerTurn> Coordinator::AskWithState(const UserQuery& query,
                                             DialogueState* state) {
  MetricsRegistry::Global().GetCounter("coordinator/turns")->Increment();
  std::shared_ptr<Trace> trace;
  if (config_.observability.trace_turns) {
    trace = std::make_shared<Trace>("turn", config_.observability.clock);
  }
  // The root span must close before Render/ToJson, so the turn body runs
  // inside this block.
  Result<AnswerTurn> result = [&]() -> Result<AnswerTurn> {
    std::optional<ScopedTrace> scoped_trace;
    if (trace != nullptr) scoped_trace.emplace(trace.get());
    Span root("coordinator/turn");
    return RunTurn(query, state);
  }();
  if (!result.ok()) return result;
  AnswerTurn turn = std::move(result).Value();
  turn.trace = std::move(trace);
  if (turn.degraded) {
    MetricsRegistry::Global().GetCounter("coordinator/degraded_turns")
        ->Increment();
  }
  if (turn.trace != nullptr && config_.observability.explain_turns) {
    monitor_.Emit(ComponentStage::kCoordinator,
                  "per-turn breakdown:\n" + turn.trace->Render());
  }
  return turn;
}

Result<AnswerTurn> Coordinator::RunTurn(const UserQuery& query,
                                        DialogueState* state) {
  // Dialogue state: the caller's per-session copy on the serving path,
  // the coordinator's own single-conversation members otherwise.
  ContextualQueryRewriter& rewriter =
      state != nullptr ? state->rewriter : rewriter_;
  AnswerTurn turn;
  if (config_.enable_knowledge_base) {
    Timer timer;
    // Resolve vague follow-ups from dialogue history for retrieval only;
    // the answer generator still sees the user's own words.
    UserQuery effective = query;
    if (config_.rewrite_vague_queries && !query.text.empty()) {
      Span rewrite_span("coordinator/rewrite");
      Result<std::string> rewritten = rewriter.RewriteChecked(query.text);
      if (rewritten.ok()) {
        effective.text = std::move(rewritten).Value();
        if (effective.text != query.text) {
          monitor_.Emit(ComponentStage::kQueryExecution,
                        "rewrote vague query to \"" + effective.text + "\"");
        }
      } else if (rewritten.status().IsRetryable()) {
        // Rewriter outage: search with the user's raw words instead of
        // failing the round — a vaguer query beats no query.
        turn.degradation_notes.push_back(
            "query rewriter unavailable: " + rewritten.status().message() +
            "; searching with the raw query text");
        monitor_.EmitDegraded(ComponentStage::kQueryExecution,
                              turn.degradation_notes.back());
      } else {
        return rewritten.status();
      }
    }
    if (!query.text.empty()) rewriter.ObserveTurn(query.text);
    MQA_ASSIGN_OR_RETURN(QueryOutcome outcome,
                         executor_->Execute(effective, config_.search));
    for (const std::string& note : outcome.degradation) {
      monitor_.EmitDegraded(ComponentStage::kQueryExecution, note);
      turn.degradation_notes.push_back(note);
    }
    turn.items = std::move(outcome.items);
    turn.retrieval = std::move(outcome.retrieval);
    monitor_.Emit(ComponentStage::kQueryExecution,
                  "retrieved " + std::to_string(turn.items.size()) +
                      " results for \"" + query.text + "\"",
                  timer.ElapsedMillis());
  }
  Timer timer;
  GenerationOutcome generation;
  {
    Span span("coordinator/answer");
    if (state != nullptr) {
      // Serving path: generate against the session's own prompt history
      // (GenerateTurn is const and thread-safe across sessions).
      MQA_ASSIGN_OR_RETURN(
          turn.answer,
          answer_generator_->GenerateTurn(query.text, turn.items,
                                          &state->prompt, &generation));
    } else {
      MQA_ASSIGN_OR_RETURN(
          turn.answer, answer_generator_->Generate(query.text, turn.items));
      generation.used_fallback = answer_generator_->last_used_fallback();
      generation.failure = answer_generator_->last_failure();
    }
  }
  if (generation.used_fallback) {
    turn.degradation_notes.push_back(
        "LLM unavailable (" + generation.failure.message() +
        "); served the extractive answer");
    monitor_.EmitDegraded(ComponentStage::kAnswerGeneration,
                          turn.degradation_notes.back(),
                          timer.ElapsedMillis());
  } else {
    monitor_.Emit(ComponentStage::kAnswerGeneration, "answer ready",
                  timer.ElapsedMillis());
  }
  turn.degraded = !turn.degradation_notes.empty();
  return turn;
}

Result<std::unique_ptr<Coordinator>> Coordinator::CreateFromState(
    const MqaConfig& config, KnowledgeBase kb, VectorStore store,
    std::vector<float> weights, std::istream* index_blob) {
  if (!config.enable_knowledge_base) {
    return Status::InvalidArgument(
        "a persisted system always has a knowledge base");
  }
  std::unique_ptr<Coordinator> c(new Coordinator());
  c->config_ = config;
  c->InitCompaction();

  if (config.observability.trace_build) {
    c->build_trace_ =
        std::make_shared<Trace>("restore", config.observability.clock);
  }
  std::optional<ScopedTrace> scoped_trace;
  if (c->build_trace_ != nullptr) scoped_trace.emplace(c->build_trace_.get());
  Span build_span("coordinator/restore");

  Timer timer;
  MQA_ASSIGN_OR_RETURN(World world, World::Create(config.world));
  c->world_ = std::make_unique<World>(std::move(world));
  c->kb_ = std::make_unique<KnowledgeBase>(std::move(kb));
  c->monitor_.Emit(ComponentStage::kDataPreprocessing,
                   "restored " + std::to_string(c->kb_->size()) +
                       " objects from disk",
                   timer.ElapsedMillis());

  MQA_ASSIGN_OR_RETURN(
      EncoderSet encoders,
      MakeSimEncoderSet(c->world_.get(), config.encoder_preset,
                        config.embedding_dim));
  c->encoders_ = std::make_unique<EncoderSet>(std::move(encoders));
  c->represented_.store = std::make_shared<VectorStore>(std::move(store));
  c->represented_.weights = std::move(weights);
  c->represented_.labels.reserve(c->kb_->size());
  for (const Object& obj : c->kb_->objects()) {
    c->represented_.labels.push_back(obj.concept_id);
  }
  c->monitor_.Emit(ComponentStage::kVectorRepresentation,
                   "restored encoded store (" +
                       std::to_string(c->represented_.store->size()) +
                       " rows) and weights");

  timer.Reset();
  // The saved single-index blob cannot seed a sharded deployment (shards
  // hold disjoint sub-indexes), so sharding always rebuilds.
  if (index_blob != nullptr && config.framework == "must" &&
      !config.shard.enable) {
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<MustFramework> must,
        MustFramework::CreateFromSavedIndex(c->represented_.store,
                                            c->represented_.weights,
                                            index_blob));
    c->framework_ = std::move(must);
    c->monitor_.Emit(ComponentStage::kIndexConstruction,
                     "restored index from disk (no rebuild)",
                     timer.ElapsedMillis());
  } else {
    MQA_ASSIGN_OR_RETURN(
        c->framework_,
        BuildFramework(config, c->represented_.store, c->represented_.weights,
                       &c->build_report_));
    c->monitor_.Emit(ComponentStage::kIndexConstruction,
                     "rebuilt index " + config.index.algorithm,
                     timer.ElapsedMillis());
  }

  // Re-apply persisted tombstones: deleted objects' rows are still in the
  // store (ids stay dense until compaction), the framework just must not
  // surface them.
  for (uint64_t id = 0; id < c->kb_->size(); ++id) {
    if (c->kb_->IsDeleted(id)) {
      MQA_RETURN_NOT_OK(c->framework_->Remove(static_cast<uint32_t>(id)));
    }
  }

  std::unique_ptr<LanguageModel> llm;
  if (config.llm == "sim-llm") {
    llm = std::make_unique<SimLlm>(config.seed);
  } else if (config.llm != "none") {
    return Status::InvalidArgument("unknown llm: " + config.llm);
  }
  const std::string llm_label = llm ? llm->name() : "none";
  llm = MaybeWrapLlm(std::move(llm), config.resilience);
  c->answer_generator_ =
      std::make_unique<AnswerGenerator>(std::move(llm), config.temperature);
  c->executor_ = std::make_unique<QueryExecutor>(
      c->kb_.get(), c->encoders_.get(), c->framework_.get());
  if (config.resilience.enable) {
    c->executor_->EnableResilience(MakeEncoderRetry(config.resilience),
                                   config.resilience.clock);
  }
  c->monitor_.Emit(ComponentStage::kAnswerGeneration,
                   "llm: " + llm_label + ", temperature " +
                       FormatDouble(config.temperature, 2));
  return c;
}

Result<uint64_t> Coordinator::IngestObject(Object object) {
  if (!config_.enable_knowledge_base) {
    return Status::FailedPrecondition("knowledge base is disabled");
  }
  auto* must = dynamic_cast<MustFramework*>(framework_.get());
  auto* sharded = dynamic_cast<ShardedRetrieval*>(framework_.get());
  if (must == nullptr && sharded == nullptr) {
    return Status::Unimplemented(
        "live ingestion requires the must framework; switch frameworks to "
        "rebuild instead");
  }
  // Check mutability before touching any state, so a refusal leaves the
  // knowledge base, store and index consistent.
  if (must != nullptr && !must->SupportsLiveIngestion()) {
    return Status::Unimplemented(
        "the disk-resident index is immutable; rebuild to ingest");
  }
  if (sharded != nullptr && !sharded->SupportsLiveIngestion()) {
    return Status::Unimplemented(
        "sharded live ingestion requires must shards over mutable indexes");
  }
  Timer timer;
  MQA_ASSIGN_OR_RETURN(uint64_t id, kb_->Ingest(std::move(object)));
  MQA_ASSIGN_OR_RETURN(MultiVector mv, encoders_->EncodeObject(kb_->at(id)));
  MQA_RETURN_NOT_OK(represented_.store->AddMultiVector(mv).status());
  represented_.labels.push_back(kb_->at(id).concept_id);
  if (sharded != nullptr) {
    MQA_RETURN_NOT_OK(sharded->IngestAppended(config_.index.graph));
  } else {
    MQA_RETURN_NOT_OK(must->IngestAppended(config_.index.graph));
  }
  monitor_.Emit(ComponentStage::kDataPreprocessing,
                "ingested object #" + std::to_string(id) + " live",
                timer.ElapsedMillis());
  return id;
}

Status Coordinator::RemoveObject(uint64_t id) {
  if (!config_.enable_knowledge_base) {
    return Status::FailedPrecondition("knowledge base is disabled");
  }
  if (framework_ == nullptr) {
    return Status::FailedPrecondition("no retrieval framework configured");
  }
  if (id >= kb_->size()) {
    return Status::NotFound("object id out of range: " + std::to_string(id));
  }
  Timer timer;
  // The framework first (it validates bounds and double deletes against
  // the same dense id space), then the knowledge base; both tombstone
  // sets stay in lockstep because their preconditions are identical.
  MQA_RETURN_NOT_OK(framework_->Remove(static_cast<uint32_t>(id)));
  MQA_RETURN_NOT_OK(kb_->Remove(id));
  monitor_.Emit(ComponentStage::kDataPreprocessing,
                "removed object #" + std::to_string(id) + " (" +
                    std::to_string(kb_->num_deleted()) + " tombstones, " +
                    FormatDouble(100.0 * GarbageRatio(), 1) + "% garbage)",
                timer.ElapsedMillis());
  MaybeCompact();
  return Status::OK();
}

double Coordinator::GarbageRatio() const {
  return kb_ != nullptr ? kb_->GarbageRatio() : 0.0;
}

Status Coordinator::CompactNow() {
  if (!config_.enable_knowledge_base) {
    return Status::FailedPrecondition("knowledge base is disabled");
  }
  if (kb_->num_deleted() == 0) return Status::OK();
  Span span("compaction/run");
  Timer timer;
  const uint64_t evicted = kb_->num_deleted();

  // Plan: one remap (old id -> dense new id) drives the knowledge base,
  // store and index rewrites identically, keeping the three id-aligned.
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("compaction/step"));
  std::vector<uint32_t> remap;
  const uint32_t live = kb_->BuildRemap(&remap);
  if (live == 0) {
    return Status::FailedPrecondition(
        "compaction would empty the corpus; refusing");
  }

  // Stage everything fallible off to the side; nothing commits until all
  // of it succeeded, so a failure (injected or real) leaves the system
  // serving exactly as before — with tombstones, but consistent.
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("compaction/step"));
  VectorStore staged(represented_.store->schema());
  staged.Reserve(live);
  for (uint32_t id = 0; id < represented_.store->size(); ++id) {
    if (remap[id] == kTombstonedId) continue;
    MQA_RETURN_NOT_OK(staged.Add(represented_.store->Row(id)).status());
  }
  KnowledgeBase compacted_kb = kb_->CompactLive(remap, live);

  auto* must = dynamic_cast<MustFramework*>(framework_.get());
  const bool in_place = must != nullptr && must->flat_graph_index() != nullptr;
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("compaction/step"));
  if (in_place) {
    // Commit. The framework's distance computers read the store through a
    // borrowed pointer, so rewriting *represented_.store in place keeps
    // them valid; CompactTombstones then swaps in the spliced graph. Both
    // steps were validated up front and do not fail in practice; an error
    // here is surfaced so the durability layer can fail closed.
    *represented_.store = std::move(staged);
    MQA_RETURN_NOT_OK(
        must->CompactTombstones(remap, live, config_.index.graph));
  } else {
    // Non-flat index kinds and non-MUST frameworks (including the sharded
    // layer) rebuild over the compacted corpus; the new framework is
    // complete before anything is committed.
    auto new_store = std::make_shared<VectorStore>(std::move(staged));
    BuildReport report;
    MQA_ASSIGN_OR_RETURN(
        std::unique_ptr<RetrievalFramework> rebuilt,
        BuildFramework(config_, new_store, represented_.weights, &report));
    represented_.store = std::move(new_store);
    framework_ = std::move(rebuilt);
    build_report_ = report;
    executor_ = std::make_unique<QueryExecutor>(kb_.get(), encoders_.get(),
                                                framework_.get());
    if (config_.resilience.enable) {
      executor_->EnableResilience(MakeEncoderRetry(config_.resilience),
                                  config_.resilience.clock);
    }
  }
  *kb_ = std::move(compacted_kb);
  represented_.labels.clear();
  represented_.labels.reserve(kb_->size());
  for (const Object& obj : kb_->objects()) {
    represented_.labels.push_back(obj.concept_id);
  }
  ++compactions_;
  monitor_.Emit(ComponentStage::kIndexConstruction,
                "compacted " + std::to_string(evicted) + " tombstones (" +
                    std::to_string(live) + " live objects, " +
                    (in_place ? "in-place splice" : "full rebuild") + ")",
                timer.ElapsedMillis());
  return Status::OK();
}

void Coordinator::InitCompaction() {
  CircuitBreakerConfig bc;
  bc.failure_threshold = config_.compaction.breaker_failure_threshold;
  bc.open_duration_ms = config_.compaction.breaker_open_ms;
  compaction_breaker_ =
      std::make_unique<CircuitBreaker>(bc, config_.resilience.clock);
}

BreakerState Coordinator::compaction_breaker_state() const {
  return compaction_breaker_ != nullptr ? compaction_breaker_->state()
                                        : BreakerState::kClosed;
}

void Coordinator::MaybeCompact() {
  const CompactionOptions& opt = config_.compaction;
  if (!opt.auto_compact || kb_ == nullptr) return;
  if (GarbageRatio() < opt.garbage_ratio) return;
  Clock* clk = config_.resilience.clock != nullptr ? config_.resilience.clock
                                                   : SystemClock();
  const int64_t now = clk->NowMicros();
  if (opt.min_interval_ms > 0.0 && last_compaction_micros_ > 0 &&
      static_cast<double>(now - last_compaction_micros_) / 1e3 <
          opt.min_interval_ms) {
    return;
  }
  // The breaker turns a persistently failing compactor into a quiet
  // degradation (tombstone-only service) instead of an attempt storm.
  if (compaction_breaker_ != nullptr && !compaction_breaker_->Admit().ok()) {
    return;
  }
  const Status st = CompactNow();
  if (compaction_breaker_ != nullptr) compaction_breaker_->Record(st);
  if (st.ok()) {
    last_compaction_micros_ = now;
  } else {
    monitor_.EmitDegraded(ComponentStage::kIndexConstruction,
                          "auto-compaction failed (" + st.message() +
                              "); serving with tombstones");
  }
}

Status Coordinator::SetFramework(const std::string& name) {
  if (!config_.enable_knowledge_base) {
    return Status::FailedPrecondition("knowledge base is disabled");
  }
  Timer timer;
  BuildReport report;
  MqaConfig switched = config_;
  switched.framework = name;
  auto fw = BuildFramework(switched, represented_.store, represented_.weights,
                           &report);
  if (!fw.ok()) return fw.status();
  framework_ = std::move(fw).Value();
  build_report_ = report;
  config_.framework = name;
  executor_ = std::make_unique<QueryExecutor>(kb_.get(), encoders_.get(),
                                              framework_.get());
  if (config_.resilience.enable) {
    executor_->EnableResilience(MakeEncoderRetry(config_.resilience),
                                config_.resilience.clock);
  }
  monitor_.Emit(ComponentStage::kIndexConstruction,
                "switched framework to " + name, timer.ElapsedMillis());
  return Status::OK();
}

Status Coordinator::SetWeights(std::vector<float> weights) {
  if (framework_ == nullptr) {
    return Status::FailedPrecondition("no retrieval framework configured");
  }
  MQA_RETURN_NOT_OK(framework_->SetWeights(weights));
  represented_.weights = std::move(weights);
  return Status::OK();
}

void Coordinator::ResetDialogue() {
  answer_generator_->ClearHistory();
  rewriter_.Clear();
}

}  // namespace mqa
