#include "core/persistence.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "core/config_parser.h"
#include "retrieval/must.h"
#include "storage/durable_file.h"

namespace mqa {

namespace {

std::string PathJoin(const std::string& dir, const char* file) {
  if (!dir.empty() && dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

}  // namespace

std::string MqaConfigToText(const MqaConfig& config) {
  std::string out;
  auto line = [&out](const std::string& key, const std::string& value) {
    out += key + " = " + value + "\n";
  };
  line("enable_knowledge_base",
       config.enable_knowledge_base ? "true" : "false");
  line("corpus_size", std::to_string(config.corpus_size));
  line("kb_name", config.kb_name);
  line("encoder", config.encoder_preset);
  line("embedding_dim", std::to_string(config.embedding_dim));
  line("learn_weights", config.learn_weights ? "true" : "false");
  line("training_triplets", std::to_string(config.num_training_triplets));
  line("index.algorithm", config.index.algorithm);
  line("index.max_degree", std::to_string(config.index.graph.max_degree));
  line("index.build_beam", std::to_string(config.index.graph.build_beam));
  line("index.alpha", FormatDouble(config.index.graph.alpha, 3));
  line("framework", config.framework);
  line("search.k", std::to_string(config.search.k));
  line("search.beam_width", std::to_string(config.search.beam_width));
  line("rewrite_vague_queries",
       config.rewrite_vague_queries ? "true" : "false");
  line("llm", config.llm);
  line("temperature", FormatDouble(config.temperature, 3));
  line("seed", std::to_string(config.seed));
  line("world.num_concepts", std::to_string(config.world.num_concepts));
  line("world.latent_dim", std::to_string(config.world.latent_dim));
  line("world.raw_image_dim", std::to_string(config.world.raw_image_dim));
  // After the top-level seed, which also assigns world.seed.
  line("world.seed", std::to_string(config.world.seed));
  line("world.words_per_concept",
       std::to_string(config.world.words_per_concept));
  line("world.adjectives_per_noun",
       std::to_string(config.world.adjectives_per_noun));
  line("world.extra_modalities",
       std::to_string(config.world.num_extra_modalities));
  line("world.object_noise", FormatDouble(config.world.object_noise, 4));
  line("world.adjective_dropout",
       FormatDouble(config.world.text_adjective_dropout, 4));
  if (!config.world.modality_noise.empty()) {
    line("world.image_noise",
         FormatDouble(config.world.modality_noise[0], 4));
  }
  if (config.world.modality_noise.size() > 1) {
    line("world.text_noise",
         FormatDouble(config.world.modality_noise[1], 4));
  }
  return out;
}

Status SaveSystemState(const Coordinator& coordinator,
                       const std::string& dir) {
  if (!coordinator.config().enable_knowledge_base) {
    return Status::FailedPrecondition(
        "nothing to persist: the knowledge base is disabled");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  MQA_RETURN_NOT_OK(WriteFileAtomic(PathJoin(dir, "config.txt"),
                                    MqaConfigToText(coordinator.config())));
  MQA_RETURN_NOT_OK(
      WriteFileAtomic(PathJoin(dir, "kb.bin"), [&](std::ostream& out) {
        return coordinator.kb().Save(out);
      }));
  MQA_RETURN_NOT_OK(
      WriteFileAtomic(PathJoin(dir, "store.bin"), [&](std::ostream& out) {
        return coordinator.store().Save(out);
      }));
  MQA_RETURN_NOT_OK(
      WriteFileAtomic(PathJoin(dir, "weights.txt"), [&](std::ostream& out) {
        for (float w : coordinator.weights()) {
          // %.9g round-trips any float exactly through text.
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.9g", w);
          out << buf << "\n";
        }
        return Status::OK();
      }));
  // The index round-trips only for MUST over a flat graph.
  const Coordinator& c = coordinator;
  if (auto* must = dynamic_cast<const MustFramework*>(c.framework_const())) {
    if (const auto* graph = must->flat_graph_index()) {
      MQA_RETURN_NOT_OK(
          WriteFileAtomic(PathJoin(dir, "index.bin"), [&](std::ostream& out) {
            return graph->Save(out);
          }));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Coordinator>> LoadSystemState(
    const std::string& dir) {
  MqaConfig config;
  {
    std::ifstream in(PathJoin(dir, "config.txt"));
    if (!in) return Status::IoError("cannot read " + dir + "/config.txt");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    MQA_ASSIGN_OR_RETURN(config, ParseMqaConfigText(text));
  }
  return LoadSystemStateWithConfig(config, dir);
}

Result<std::unique_ptr<Coordinator>> LoadSystemStateWithConfig(
    const MqaConfig& config, const std::string& dir) {
  std::ifstream kb_in(PathJoin(dir, "kb.bin"), std::ios::binary);
  if (!kb_in) return Status::IoError("cannot read " + dir + "/kb.bin");
  MQA_ASSIGN_OR_RETURN(KnowledgeBase kb, KnowledgeBase::Load(kb_in));

  std::ifstream store_in(PathJoin(dir, "store.bin"), std::ios::binary);
  if (!store_in) return Status::IoError("cannot read " + dir + "/store.bin");
  MQA_ASSIGN_OR_RETURN(VectorStore store, VectorStore::Load(store_in));

  std::vector<float> weights;
  {
    std::ifstream in(PathJoin(dir, "weights.txt"));
    if (!in) return Status::IoError("cannot read " + dir + "/weights.txt");
    std::string line;
    while (std::getline(in, line)) {
      if (!Trim(line).empty()) weights.push_back(std::stof(line));
    }
  }
  if (weights.size() != store.schema().num_modalities()) {
    return Status::IoError("weights file does not match the store schema");
  }
  if (kb.size() != store.size()) {
    return Status::IoError("knowledge base and store sizes differ");
  }

  std::ifstream index_in(PathJoin(dir, "index.bin"), std::ios::binary);
  return Coordinator::CreateFromState(config, std::move(kb),
                                      std::move(store), std::move(weights),
                                      index_in ? &index_in : nullptr);
}

}  // namespace mqa
