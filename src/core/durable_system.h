#ifndef MQA_CORE_DURABLE_SYSTEM_H_
#define MQA_CORE_DURABLE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/coordinator.h"
#include "storage/wal.h"

namespace mqa {

/// Knobs of the crash-safe mutation layer.
struct DurabilityOptions {
  /// Group-commit width for the write-ahead log (see WalWriterOptions).
  /// 1 = every mutation is fsynced before it is acknowledged.
  size_t wal_sync_every = 1;
  /// Compaction + checkpoint trigger: when the tombstone ratio crosses
  /// this after a delete, the system compacts and immediately snapshots
  /// (a compaction re-densifies ids, so it must never outlive the WAL it
  /// invalidates — checkpointing right after keeps recovery correct).
  double checkpoint_garbage_ratio = 0.25;
  /// Old snapshot directories kept around after a checkpoint (the newest
  /// is always kept; older ones are garbage-collected best-effort).
  int keep_snapshots = 2;
};

/// What recovery did when Open() found an existing directory.
struct RecoveryReport {
  bool recovered = false;       ///< false = fresh bootstrap
  uint64_t snapshot_seq = 0;    ///< last seq covered by the loaded snapshot
  uint64_t replayed_inserts = 0;
  uint64_t replayed_removes = 0;
  uint64_t torn_wal_bytes = 0;  ///< trailing bytes discarded as torn
  double recovery_ms = 0.0;
};

/// Crash-safe wrapper around a live Coordinator: every mutation (insert /
/// delete) is appended to a write-ahead log before it is applied, and the
/// whole system periodically checkpoints into an atomic snapshot
/// directory. Reopening after a crash loads the last good snapshot and
/// replays the WAL tail, so every acknowledged mutation survives.
///
/// On-disk layout under `dir`:
///
///   CURRENT           "snapshot-<seq>\n<seq>\n" — the live snapshot name
///                     and the last mutation seq it covers
///   snapshot-<seq>/   a SaveSystemState directory (atomic per file)
///   wal.log           CRC-framed mutation records since that snapshot
///
/// Failure model: a WAL append or fsync failure rejects the mutation;
/// once the writer reports itself broken (torn write, failed fsync) the
/// system fail-stops mutations (`broken()`) — reads keep working, and
/// Open()-ing the directory again recovers to a consistent state. The
/// same fail-stop applies when a logged mutation fails to apply, or a
/// checkpoint fails right after a compaction (the delete that triggered
/// it is applied and logged, so its ack stands; only *further* mutations
/// are refused): in both cases memory and disk have diverged, and
/// recovery from disk is the only safe path.
///
/// Not thread-safe for mutations; queries go through coordinator() and
/// follow its rules.
class DurableSystem {
 public:
  /// Opens (or bootstraps) a durable system in `dir`. When `dir` holds a
  /// previous incarnation (a CURRENT file), the system is recovered from
  /// its last snapshot plus the WAL tail; otherwise the coordinator is
  /// built fresh from `config` and an initial checkpoint is written.
  /// Auto-compaction inside the coordinator is disabled — this layer owns
  /// the compaction schedule so every compaction is bracketed by a
  /// checkpoint.
  static Result<std::unique_ptr<DurableSystem>> Open(
      const MqaConfig& config, const std::string& dir,
      const DurabilityOptions& options = {});

  /// Logs and applies one insert; returns the new object id. The record
  /// is durable once `last_durable_seq() >= seq` (immediately with
  /// wal_sync_every == 1).
  Result<uint64_t> Ingest(Object object);

  /// Logs and applies one delete. May trigger a compaction + checkpoint
  /// (see DurabilityOptions::checkpoint_garbage_ratio).
  Status Remove(uint64_t id);

  /// Durability barrier: fsyncs any unsynced WAL records (group commit).
  Status Flush();

  /// Snapshots the current state and truncates the WAL.
  Status Checkpoint();

  /// Test hook simulating a crash: unsynced WAL bytes are discarded and
  /// the system refuses further mutations. Destroy and Open() again to
  /// recover.
  Status CrashForTest();

  Coordinator* coordinator() { return coordinator_.get(); }
  const RecoveryReport& recovery_report() const { return report_; }
  /// Seq of the last mutation applied to the in-memory system.
  uint64_t applied_seq() const { return applied_seq_; }
  /// Seq up to which mutations are crash-durable (snapshot or fsynced WAL).
  uint64_t last_durable_seq() const;
  bool broken() const { return broken_; }
  const std::string& dir() const { return dir_; }

 private:
  DurableSystem() = default;

  Status CheckUsable() const;
  /// Compacts + checkpoints when the garbage ratio crosses the trigger.
  Status MaybeCompactAndCheckpoint();
  /// Replays one recovered WAL record onto the coordinator.
  Status ReplayRecord(const WalRecord& record);

  MqaConfig config_;
  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t applied_seq_ = 0;     ///< last mutation seq applied in memory
  uint64_t checkpoint_seq_ = 0;  ///< last seq covered by the live snapshot
  RecoveryReport report_;
  bool broken_ = false;
};

}  // namespace mqa

#endif  // MQA_CORE_DURABLE_SYSTEM_H_
