#ifndef MQA_CORE_QUERY_EXECUTOR_H_
#define MQA_CORE_QUERY_EXECUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "encoder/encoder.h"
#include "llm/prompt_builder.h"
#include "retrieval/framework.h"
#include "storage/knowledge_base.h"

namespace mqa {

/// What a user submits in one dialogue round: free text, optionally a
/// previously returned result they clicked (feedback loop), optionally an
/// uploaded image, and optionally explicit modality weights.
struct UserQuery {
  std::string text;
  std::optional<uint64_t> selected_object;  ///< id of a clicked result
  std::optional<Payload> uploaded_image;    ///< image-assisted input
  std::vector<float> weight_override;       ///< empty = framework default
  /// Optional attribute constraint: only objects passing the predicate may
  /// be returned (e.g. a category filter from the configuration panel).
  std::function<bool(const Object&)> object_filter;
};

/// Retrieval output enriched with displayable descriptions.
struct QueryOutcome {
  RetrievalResult retrieval;
  std::vector<RetrievedItem> items;  ///< aligned with retrieval.neighbors
  /// Human-readable degradation notes (dropped modalities, partial disk
  /// results). Empty on a fully healthy round.
  std::vector<std::string> degradation;
};

/// The Query Execution component: encodes a user query into per-modality
/// vectors (text via the text encoder; image via the image encoder from
/// either the upload or the selected previous result — the dotted feedback
/// arrow in Figure 2) and runs the configured retrieval framework.
class QueryExecutor {
 public:
  /// All pointers are borrowed and must outlive the executor.
  QueryExecutor(const KnowledgeBase* kb, const EncoderSet* encoders,
                RetrievalFramework* framework);

  /// Enables degraded-mode encoding: transient encoder failures are
  /// retried under `retry` (driven by `clock`; null = SystemClock) and a
  /// modality whose encoder stays down is *dropped* from the query — the
  /// surviving modalities carry the search (their weights renormalize
  /// inside the framework). Only when every requested modality fails does
  /// Execute return kUnavailable.
  void EnableResilience(const RetryPolicy& retry, Clock* clock = nullptr);

  /// Executes one round. Fails when the query carries no usable modality
  /// or references an unknown object.
  Result<QueryOutcome> Execute(const UserQuery& query,
                               const SearchParams& params);

  /// Encodes without searching (exposed for tests and benches).
  /// `degradation` (optional) receives a note per modality dropped due to
  /// encoder failure; without resilience enabled, encoder errors simply
  /// propagate and no notes are produced.
  Result<RetrievalQuery> EncodeUserQuery(
      const UserQuery& query,
      std::vector<std::string>* degradation = nullptr) const;

 private:
  /// First schema slot of the given type, or nullopt.
  std::optional<size_t> SlotOfType(ModalityType type) const;

  /// One encoder call, retried under the resilience policy when enabled.
  Result<Vector> EncodeSlot(size_t slot, const Payload& payload) const;

  const KnowledgeBase* kb_;
  const EncoderSet* encoders_;
  RetrievalFramework* framework_;

  bool resilience_ = false;
  RetryPolicy encoder_retry_;
  Clock* clock_ = nullptr;
};

/// A one-line human-readable description of an object (used in prompts
/// and in the QA panel's result list).
std::string DescribeObject(const Object& object);

}  // namespace mqa

#endif  // MQA_CORE_QUERY_EXECUTOR_H_
