#ifndef MQA_CORE_QUERY_EXECUTOR_H_
#define MQA_CORE_QUERY_EXECUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoder/encoder.h"
#include "llm/prompt_builder.h"
#include "retrieval/framework.h"
#include "storage/knowledge_base.h"

namespace mqa {

/// What a user submits in one dialogue round: free text, optionally a
/// previously returned result they clicked (feedback loop), optionally an
/// uploaded image, and optionally explicit modality weights.
struct UserQuery {
  std::string text;
  std::optional<uint64_t> selected_object;  ///< id of a clicked result
  std::optional<Payload> uploaded_image;    ///< image-assisted input
  std::vector<float> weight_override;       ///< empty = framework default
  /// Optional attribute constraint: only objects passing the predicate may
  /// be returned (e.g. a category filter from the configuration panel).
  std::function<bool(const Object&)> object_filter;
};

/// Retrieval output enriched with displayable descriptions.
struct QueryOutcome {
  RetrievalResult retrieval;
  std::vector<RetrievedItem> items;  ///< aligned with retrieval.neighbors
};

/// The Query Execution component: encodes a user query into per-modality
/// vectors (text via the text encoder; image via the image encoder from
/// either the upload or the selected previous result — the dotted feedback
/// arrow in Figure 2) and runs the configured retrieval framework.
class QueryExecutor {
 public:
  /// All pointers are borrowed and must outlive the executor.
  QueryExecutor(const KnowledgeBase* kb, const EncoderSet* encoders,
                RetrievalFramework* framework);

  /// Executes one round. Fails when the query carries no usable modality
  /// or references an unknown object.
  Result<QueryOutcome> Execute(const UserQuery& query,
                               const SearchParams& params);

  /// Encodes without searching (exposed for tests and benches).
  Result<RetrievalQuery> EncodeUserQuery(const UserQuery& query) const;

 private:
  /// First schema slot of the given type, or nullopt.
  std::optional<size_t> SlotOfType(ModalityType type) const;

  const KnowledgeBase* kb_;
  const EncoderSet* encoders_;
  RetrievalFramework* framework_;
};

/// A one-line human-readable description of an object (used in prompts
/// and in the QA panel's result list).
std::string DescribeObject(const Object& object);

}  // namespace mqa

#endif  // MQA_CORE_QUERY_EXECUTOR_H_
