#ifndef MQA_CORE_QUERY_EXECUTOR_H_
#define MQA_CORE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "encoder/encoder.h"
#include "llm/prompt_builder.h"
#include "retrieval/framework.h"
#include "storage/knowledge_base.h"

namespace mqa {

/// What a user submits in one dialogue round: free text, optionally a
/// previously returned result they clicked (feedback loop), optionally an
/// uploaded image, and optionally explicit modality weights.
struct UserQuery {
  std::string text;
  std::optional<uint64_t> selected_object;  ///< id of a clicked result
  std::optional<Payload> uploaded_image;    ///< image-assisted input
  std::vector<float> weight_override;       ///< empty = framework default
  /// Optional attribute constraint: only objects passing the predicate may
  /// be returned (e.g. a category filter from the configuration panel).
  std::function<bool(const Object&)> object_filter;
  /// Absolute deadline in the executor clock's epoch (0 = none). Set by
  /// the serving layer; the executor sheds expired queries and passes the
  /// deadline to the batching hooks so they can flush on low slack.
  int64_t deadline_micros = 0;
};

/// Retrieval output enriched with displayable descriptions.
struct QueryOutcome {
  RetrievalResult retrieval;
  std::vector<RetrievedItem> items;  ///< aligned with retrieval.neighbors
  /// Human-readable degradation notes (dropped modalities, partial disk
  /// results). Empty on a fully healthy round.
  std::vector<std::string> degradation;
};

/// The two execution stages a serving layer may intercept.
enum class ExecPhase { kEncode, kSearch };

/// Interception points for the serving layer's cross-query batching: when
/// installed, every encoder call and every framework search of this
/// executor is routed through the corresponding hook (which the server
/// wires to a Batcher), and `phase_begin`/`phase_end` bracket each stage
/// so the batcher knows which workers can still contribute requests.
/// Unset members fall back to the direct (unhooked) path. All hooks must
/// be thread-safe; the executor itself holds no mutable state per query,
/// so with hooks installed Execute may be called concurrently.
struct ExecutionHooks {
  std::function<void(ExecPhase)> phase_begin;
  std::function<void(ExecPhase)> phase_end;
  std::function<Result<Vector>(size_t slot, const Payload& payload,
                               int64_t deadline_micros)>
      encode;
  std::function<Result<RetrievalResult>(const RetrievalQuery& query,
                                        const SearchParams& params,
                                        int64_t deadline_micros)>
      search;
};

/// The Query Execution component: encodes a user query into per-modality
/// vectors (text via the text encoder; image via the image encoder from
/// either the upload or the selected previous result — the dotted feedback
/// arrow in Figure 2) and runs the configured retrieval framework.
class QueryExecutor {
 public:
  /// All pointers are borrowed and must outlive the executor.
  QueryExecutor(const KnowledgeBase* kb, const EncoderSet* encoders,
                RetrievalFramework* framework);

  /// Enables degraded-mode encoding: transient encoder failures are
  /// retried under `retry` (driven by `clock`; null = SystemClock) and a
  /// modality whose encoder stays down is *dropped* from the query — the
  /// surviving modalities carry the search (their weights renormalize
  /// inside the framework). Only when every requested modality fails does
  /// Execute return kUnavailable.
  void EnableResilience(const RetryPolicy& retry, Clock* clock = nullptr);

  /// Installs (or clears, with null) the serving layer's batching hooks.
  /// Not thread-safe against in-flight Execute calls: install before
  /// serving starts.
  void SetExecutionHooks(std::shared_ptr<const ExecutionHooks> hooks) {
    hooks_ = std::move(hooks);
  }

  /// Overrides the clock used for deadline checks (and, when resilience
  /// is on, encoder retry backoff). The serving layer installs its own
  /// clock so queue deadlines and executor deadlines share an epoch.
  void SetClock(Clock* clock) { clock_ = clock; }

  /// Executes one round. Fails when the query carries no usable modality
  /// or references an unknown object, and sheds with kDeadlineExceeded
  /// when the query's deadline has already passed.
  Result<QueryOutcome> Execute(const UserQuery& query,
                               const SearchParams& params);

  /// Encodes without searching (exposed for tests and benches).
  /// `degradation` (optional) receives a note per modality dropped due to
  /// encoder failure; without resilience enabled, encoder errors simply
  /// propagate and no notes are produced.
  Result<RetrievalQuery> EncodeUserQuery(
      const UserQuery& query,
      std::vector<std::string>* degradation = nullptr) const;

 private:
  /// First schema slot of the given type, or nullopt.
  std::optional<size_t> SlotOfType(ModalityType type) const;

  /// One encoder call (through the encode hook when installed), retried
  /// under the resilience policy when enabled.
  Result<Vector> EncodeSlot(size_t slot, const Payload& payload,
                            int64_t deadline_micros) const;

  const KnowledgeBase* kb_;
  const EncoderSet* encoders_;
  RetrievalFramework* framework_;

  std::shared_ptr<const ExecutionHooks> hooks_;
  bool resilience_ = false;
  RetryPolicy encoder_retry_;
  Clock* clock_ = nullptr;
};

/// A one-line human-readable description of an object (used in prompts
/// and in the QA panel's result list).
std::string DescribeObject(const Object& object);

}  // namespace mqa

#endif  // MQA_CORE_QUERY_EXECUTOR_H_
