#include "core/experiment.h"

#include <cmath>

#include "common/timer.h"
#include "vector/distance.h"

namespace mqa {

Result<ExperimentCorpus> MakeExperimentCorpus(
    const WorldConfig& world_config, uint64_t corpus_size,
    const std::string& encoder_preset, uint32_t embedding_dim,
    bool learn_weights, uint64_t num_triplets) {
  ExperimentCorpus out;
  MQA_ASSIGN_OR_RETURN(World world, World::Create(world_config));
  out.world = std::make_unique<World>(std::move(world));
  MQA_ASSIGN_OR_RETURN(KnowledgeBase kb,
                       out.world->GenerateCorpus(corpus_size));
  out.kb = std::make_unique<KnowledgeBase>(std::move(kb));
  MQA_ASSIGN_OR_RETURN(
      EncoderSet encoders,
      MakeSimEncoderSet(out.world.get(), encoder_preset, embedding_dim));
  out.encoders = std::make_unique<EncoderSet>(std::move(encoders));
  MQA_ASSIGN_OR_RETURN(
      out.represented,
      RepresentCorpus(*out.kb, *out.encoders, learn_weights,
                      WeightLearnerConfig{}, num_triplets,
                      out.world.get()));
  return out;
}

Result<RetrievalQuery> EncodeTextQuery(const ExperimentCorpus& corpus,
                                       const std::string& text,
                                       bool cross_modal_fill) {
  RetrievalQuery q;
  q.modalities.parts.resize(corpus.encoders->num_modalities());
  Payload p;
  p.type = ModalityType::kText;
  p.text = text;
  MQA_ASSIGN_OR_RETURN(q.modalities.parts[1],
                       corpus.encoders->EncodeModality(1, p));
  if (cross_modal_fill) CrossModalFill(&q.modalities);
  return q;
}

Result<RetrievalQuery> EncodeImageTextQuery(const ExperimentCorpus& corpus,
                                            const Object& image_source,
                                            const std::string& text) {
  RetrievalQuery q;
  q.modalities.parts.resize(corpus.encoders->num_modalities());
  MQA_ASSIGN_OR_RETURN(
      q.modalities.parts[0],
      corpus.encoders->EncodeModality(0, image_source.modalities[0]));
  Payload p;
  p.type = ModalityType::kText;
  p.text = text;
  MQA_ASSIGN_OR_RETURN(q.modalities.parts[1],
                       corpus.encoders->EncodeModality(1, p));
  // Extra (audio-like) modality slots, when present, are filled
  // cross-modally from the image+text mean.
  CrossModalFill(&q.modalities);
  return q;
}

double ConceptPrecision(const std::vector<Neighbor>& results,
                        const KnowledgeBase& kb, uint32_t target_concept) {
  if (results.empty()) return 0.0;
  size_t hits = 0;
  for (const Neighbor& n : results) {
    if (kb.at(n.id).concept_id == target_concept) ++hits;
  }
  return static_cast<double>(hits) / results.size();
}

double GroundTruthHitRate(const std::vector<Neighbor>& results,
                          const std::vector<uint32_t>& ground_truth) {
  if (ground_truth.empty()) return 0.0;
  size_t hits = 0;
  for (uint32_t id : ground_truth) {
    for (const Neighbor& n : results) {
      if (n.id == id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / ground_truth.size();
}

double Ndcg(const std::vector<Neighbor>& results,
            const std::vector<uint32_t>& ground_truth) {
  if (ground_truth.empty() || results.empty()) return 0.0;
  auto relevant = [&](uint32_t id) {
    for (uint32_t g : ground_truth) {
      if (g == id) return true;
    }
    return false;
  };
  double dcg = 0.0;
  for (size_t r = 0; r < results.size(); ++r) {
    if (relevant(results[r].id)) {
      dcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
    }
  }
  double ideal = 0.0;
  const size_t ideal_hits = std::min(results.size(), ground_truth.size());
  for (size_t r = 0; r < ideal_hits; ++r) {
    ideal += 1.0 / std::log2(static_cast<double>(r) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

double ReciprocalRank(const std::vector<Neighbor>& results,
                      const std::vector<uint32_t>& ground_truth) {
  for (size_t r = 0; r < results.size(); ++r) {
    for (uint32_t g : ground_truth) {
      if (results[r].id == g) {
        return 1.0 / static_cast<double>(r + 1);
      }
    }
  }
  return 0.0;
}

Result<DialogueOutcome> RunTwoRoundDialogue(
    const ExperimentCorpus& corpus, RetrievalFramework* framework,
    uint32_t concept_id, Rng* rng, const SearchParams& params,
    const std::vector<float>& round2_weights) {
  const World& world = *corpus.world;
  const KnowledgeBase& kb = *corpus.kb;
  DialogueOutcome out;

  // --- Round 1: text-only. ---
  const TextQuery tq = world.MakeTextQuery(concept_id, rng);
  MQA_ASSIGN_OR_RETURN(RetrievalQuery q1, EncodeTextQuery(corpus, tq.text));
  MQA_ASSIGN_OR_RETURN(RetrievalResult r1, framework->Retrieve(q1, params));
  out.round1_ms = r1.latency_ms;
  out.dist_comps += r1.stats.dist_comps;
  out.round1_precision = ConceptPrecision(r1.neighbors, kb, concept_id);
  out.round1_hit = GroundTruthHitRate(
      r1.neighbors, world.GroundTruth(kb, tq.target_latent, params.k));
  if (r1.neighbors.empty()) return out;

  // --- The simulated user clicks the result closest to their intent. ---
  uint32_t selected = r1.neighbors[0].id;
  float best = std::numeric_limits<float>::max();
  for (const Neighbor& n : r1.neighbors) {
    const float d = L2Sq(kb.at(n.id).latent.data(), tq.target_latent.data(),
                         tq.target_latent.size());
    if (d < best) {
      best = d;
      selected = n.id;
    }
  }
  const Object& sel = kb.at(selected);

  // --- Round 2: selected image + refinement text. ---
  const ModificationSpec mod = world.MakeModification(concept_id, rng);
  MQA_ASSIGN_OR_RETURN(RetrievalQuery q2,
                       EncodeImageTextQuery(corpus, sel, mod.text));
  q2.weights = round2_weights;
  MQA_ASSIGN_OR_RETURN(RetrievalResult r2, framework->Retrieve(q2, params));
  out.round2_ms = r2.latency_ms;
  out.dist_comps += r2.stats.dist_comps;
  out.round2_precision =
      ConceptPrecision(r2.neighbors, kb, mod.target_concept);
  const std::vector<float> target = world.ModifiedTarget(sel, mod);
  out.round2_hit = GroundTruthHitRate(
      r2.neighbors, world.GroundTruth(kb, target, params.k, sel.id));
  return out;
}

Result<DialogueOutcome> RunDialogueSuite(
    const ExperimentCorpus& corpus, RetrievalFramework* framework,
    size_t num_dialogues, uint64_t seed, const SearchParams& params,
    const std::vector<float>& round2_weights) {
  Rng rng(seed);
  DialogueOutcome total;
  for (size_t d = 0; d < num_dialogues; ++d) {
    const uint32_t concept_id =
        static_cast<uint32_t>(d % corpus.world->num_concepts());
    MQA_ASSIGN_OR_RETURN(
        DialogueOutcome one,
        RunTwoRoundDialogue(corpus, framework, concept_id, &rng, params,
                            round2_weights));
    total.round1_precision += one.round1_precision;
    total.round2_precision += one.round2_precision;
    total.round1_hit += one.round1_hit;
    total.round2_hit += one.round2_hit;
    total.round1_ms += one.round1_ms;
    total.round2_ms += one.round2_ms;
    total.dist_comps += one.dist_comps;
  }
  const double n = static_cast<double>(num_dialogues);
  total.round1_precision /= n;
  total.round2_precision /= n;
  total.round1_hit /= n;
  total.round2_hit /= n;
  total.round1_ms /= n;
  total.round2_ms /= n;
  return total;
}

}  // namespace mqa
