#ifndef MQA_CORE_REPRESENT_H_
#define MQA_CORE_REPRESENT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "encoder/encoder.h"
#include "learning/weight_learner.h"
#include "storage/knowledge_base.h"
#include "storage/world.h"
#include "vector/vector_store.h"

namespace mqa {

/// Output of the Vector Representation component: the encoded corpus, its
/// ground-truth labels, and (optionally) learned modality weights.
struct RepresentedCorpus {
  std::shared_ptr<VectorStore> store;   ///< one multi-vector row per object
  std::vector<uint32_t> labels;         ///< per-object concept ids
  std::vector<float> weights;           ///< learned (or uniform) weights
  WeightTrainReport train_report;       ///< empty when learning is off
};

/// Encodes every object of `kb` with `encoders` and, when `learn_weights`
/// is set, fits modality weights with contrastive learning over
/// `num_triplets` sampled triplets. Uniform weights otherwise.
///
/// Two contrastive signals are supported:
///  * `world != nullptr` (default in the full system): multi-view pairs —
///    the positive is a *fresh observation* of the anchor object (new image
///    rendering, re-worded caption), the negative a random other object.
///    This instance-level signal needs no labels (it is what click feedback
///    or multi-view product photos provide in a deployment) and teaches the
///    weights which modality is stable AND discriminative.
///  * `world == nullptr`: concept-label triplets (anchor/positive share a
///    label) — a category-level signal.
Result<RepresentedCorpus> RepresentCorpus(const KnowledgeBase& kb,
                                          const EncoderSet& encoders,
                                          bool learn_weights,
                                          const WeightLearnerConfig& learner,
                                          uint64_t num_triplets,
                                          const World* world = nullptr);

}  // namespace mqa

#endif  // MQA_CORE_REPRESENT_H_
