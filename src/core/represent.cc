#include "core/represent.h"

namespace mqa {

namespace {

/// Multi-view contrastive triplets: the positive is a fresh observation of
/// the anchor object, the negative a random other object.
Result<std::vector<TripletDistances>> SampleMultiViewTriplets(
    const KnowledgeBase& kb, const EncoderSet& encoders, const World& world,
    const VectorStore& store, uint64_t count, Rng* rng) {
  const uint32_t n = store.size();
  if (n < 2) return Status::InvalidArgument("corpus too small for pairs");
  const VectorSchema& schema = store.schema();
  std::vector<TripletDistances> out;
  out.reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    const uint32_t anchor = static_cast<uint32_t>(rng->NextUint64(n));
    const Object observed = world.ReobserveObject(kb.at(anchor), rng);
    MQA_ASSIGN_OR_RETURN(MultiVector mv, encoders.EncodeObject(observed));
    MQA_ASSIGN_OR_RETURN(Vector positive, FlattenMultiVector(schema, mv));
    uint32_t negative = anchor;
    while (negative == anchor) {
      negative = static_cast<uint32_t>(rng->NextUint64(n));
    }
    TripletDistances triplet;
    triplet.pos = WeightLearner::PerModalityDistances(
        schema, store.data(anchor), positive.data());
    triplet.neg = WeightLearner::PerModalityDistances(
        schema, store.data(anchor), store.data(negative));
    out.push_back(std::move(triplet));
  }
  return out;
}

}  // namespace

Result<RepresentedCorpus> RepresentCorpus(const KnowledgeBase& kb,
                                          const EncoderSet& encoders,
                                          bool learn_weights,
                                          const WeightLearnerConfig& learner,
                                          uint64_t num_triplets,
                                          const World* world) {
  if (kb.empty()) return Status::FailedPrecondition("empty knowledge base");
  if (kb.schema().num_modalities() != encoders.num_modalities()) {
    return Status::InvalidArgument(
        "encoder set does not match knowledge base schema");
  }

  RepresentedCorpus out;
  out.store = std::make_shared<VectorStore>(encoders.Schema());
  out.store->Reserve(kb.size());
  out.labels.reserve(kb.size());
  for (const Object& obj : kb.objects()) {
    MQA_ASSIGN_OR_RETURN(MultiVector mv, encoders.EncodeObject(obj));
    MQA_RETURN_NOT_OK(out.store->AddMultiVector(mv).status());
    out.labels.push_back(obj.concept_id);
  }

  const size_t num_m = encoders.num_modalities();
  if (learn_weights) {
    Rng rng(learner.seed ^ 0x77e1647);
    std::vector<TripletDistances> triplets;
    if (world != nullptr) {
      MQA_ASSIGN_OR_RETURN(
          triplets, SampleMultiViewTriplets(kb, encoders, *world, *out.store,
                                            num_triplets, &rng));
    } else {
      MQA_ASSIGN_OR_RETURN(
          triplets, SampleTriplets(*out.store, out.labels, num_triplets,
                                   &rng));
    }
    WeightLearner wl(learner, num_m);
    MQA_ASSIGN_OR_RETURN(out.train_report, wl.Fit(triplets));
    out.weights = out.train_report.weights;
  } else {
    out.weights.assign(num_m, 1.0f);
  }
  return out;
}

}  // namespace mqa
