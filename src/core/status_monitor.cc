#include "core/status_monitor.h"

#include "common/string_util.h"

namespace mqa {

const char* ComponentStageToString(ComponentStage stage) {
  switch (stage) {
    case ComponentStage::kDataPreprocessing:
      return "data-preprocessing";
    case ComponentStage::kVectorRepresentation:
      return "vector-representation";
    case ComponentStage::kIndexConstruction:
      return "index-construction";
    case ComponentStage::kQueryExecution:
      return "query-execution";
    case ComponentStage::kAnswerGeneration:
      return "answer-generation";
    case ComponentStage::kCoordinator:
      return "coordinator";
  }
  return "unknown";
}

void StatusMonitor::Emit(StatusEvent event) {
  Callback callback;
  {
    MutexLock lock(&mu_);
    history_.push_back(event);
    callback = callback_;
  }
  if (callback) callback(event);
}

void StatusMonitor::Emit(ComponentStage stage, std::string message,
                         double elapsed_ms) {
  Emit(StatusEvent{stage, std::move(message), elapsed_ms, true, false});
}

void StatusMonitor::EmitDegraded(ComponentStage stage, std::string message,
                                 double elapsed_ms) {
  Emit(StatusEvent{stage, std::move(message), elapsed_ms, true, true});
}

std::string StatusMonitor::Render() const {
  std::string out;
  for (const StatusEvent& e : history()) {
    out += e.degraded ? "[!] " : (e.completed ? "[x] " : "[ ] ");
    out += ComponentStageToString(e.stage);
    out += ": ";
    out += e.message;
    if (e.elapsed_ms > 0.0) {
      out += " (" + FormatDouble(e.elapsed_ms, 1) + " ms)";
    }
    out += "\n";
  }
  return out;
}

}  // namespace mqa
