#include "core/durable_system.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/persistence.h"
#include "storage/durable_file.h"
#include "storage/knowledge_base.h"

namespace mqa {

namespace {

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kWalFile[] = "wal.log";

std::string PathJoin(const std::string& dir, const std::string& file) {
  if (!dir.empty() && dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

std::string SnapshotName(uint64_t seq) {
  return "snapshot-" + std::to_string(seq);
}

std::string EncodeRemovePayload(uint64_t id) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((id >> (8 * i)) & 0xff);
  }
  return std::string(buf, sizeof(buf));
}

Result<uint64_t> DecodeRemovePayload(const std::string& payload) {
  if (payload.size() != 8) {
    return Status::IoError("malformed remove record payload");
  }
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<unsigned char>(payload[i]))
          << (8 * i);
  }
  return id;
}

/// Parses CURRENT: "<snapshot dir name>\n<last covered seq>\n".
Status ParseCurrent(const std::string& text, std::string* snapshot,
                    uint64_t* last_seq) {
  const size_t nl = text.find('\n');
  if (nl == std::string::npos) {
    return Status::IoError("malformed CURRENT file");
  }
  *snapshot = text.substr(0, nl);
  const std::string rest = Trim(text.substr(nl + 1));
  if (snapshot->empty() || rest.empty()) {
    return Status::IoError("malformed CURRENT file");
  }
  char* end = nullptr;
  *last_seq = std::strtoull(rest.c_str(), &end, 10);
  if (end == rest.c_str()) {
    return Status::IoError("malformed CURRENT file: bad seq");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DurableSystem>> DurableSystem::Open(
    const MqaConfig& config, const std::string& dir,
    const DurabilityOptions& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("durable directory path is empty");
  }
  if (options.wal_sync_every == 0) {
    return Status::InvalidArgument("wal_sync_every must be >= 1");
  }
  Timer timer;
  auto system = std::unique_ptr<DurableSystem>(new DurableSystem());
  system->config_ = config;
  // This layer owns the compaction schedule: every compaction must be
  // bracketed by a checkpoint (it re-densifies ids, invalidating the ids
  // inside older WAL records), so the coordinator must never compact on
  // its own behind our back.
  system->config_.compaction.auto_compact = false;
  system->dir_ = dir;
  system->options_ = options;

  const std::string current_path = PathJoin(dir, kCurrentFile);
  Result<std::string> current = ReadFileToString(current_path);
  if (current.ok()) {
    // --- Recover: last good snapshot + WAL tail. ---
    std::string snapshot_name;
    uint64_t snapshot_seq = 0;
    MQA_RETURN_NOT_OK(
        ParseCurrent(current.Value(), &snapshot_name, &snapshot_seq));
    MQA_ASSIGN_OR_RETURN(
        system->coordinator_,
        LoadSystemStateWithConfig(system->config_,
                                  PathJoin(dir, snapshot_name)));
    system->report_.recovered = true;
    system->report_.snapshot_seq = snapshot_seq;
    system->checkpoint_seq_ = snapshot_seq;
    system->applied_seq_ = snapshot_seq;

    const std::string wal_path = PathJoin(dir, kWalFile);
    Result<WalReadResult> wal = ReadWal(wal_path);
    if (wal.ok()) {
      system->report_.torn_wal_bytes = wal.Value().torn_bytes;
      for (const WalRecord& record : wal.Value().records) {
        // A crash between writing CURRENT and truncating the WAL leaves
        // records the snapshot already covers; seq makes replay
        // idempotent.
        if (record.seq <= snapshot_seq) continue;
        MQA_RETURN_NOT_OK(system->ReplayRecord(record));
        system->applied_seq_ = record.seq;
      }
    } else if (wal.status().code() != StatusCode::kNotFound) {
      return wal.status();
    }
    WalWriterOptions wal_options;
    wal_options.sync_every = options.wal_sync_every;
    wal_options.first_seq = system->applied_seq_ + 1;
    MQA_ASSIGN_OR_RETURN(system->wal_,
                         WalWriter::Open(wal_path, wal_options));
  } else {
    // --- Bootstrap: build fresh, then write the initial checkpoint. ---
    MQA_ASSIGN_OR_RETURN(system->coordinator_,
                         Coordinator::Create(system->config_));
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create durable directory " + dir +
                             ": " + ec.message());
    }
    WalWriterOptions wal_options;
    wal_options.sync_every = options.wal_sync_every;
    MQA_ASSIGN_OR_RETURN(system->wal_,
                         WalWriter::Open(PathJoin(dir, kWalFile),
                                         wal_options));
    MQA_RETURN_NOT_OK(system->Checkpoint());
  }
  system->report_.recovery_ms = timer.ElapsedMillis();
  return system;
}

Status DurableSystem::ReplayRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kInsert: {
      MQA_ASSIGN_OR_RETURN(Object object,
                           DeserializeObject(record.payload));
      MQA_RETURN_NOT_OK(coordinator_->IngestObject(std::move(object)).status());
      ++report_.replayed_inserts;
      return Status::OK();
    }
    case WalRecordType::kRemove: {
      MQA_ASSIGN_OR_RETURN(const uint64_t id,
                           DecodeRemovePayload(record.payload));
      MQA_RETURN_NOT_OK(coordinator_->RemoveObject(id));
      ++report_.replayed_removes;
      return Status::OK();
    }
  }
  return Status::IoError("unknown WAL record type in replay");
}

Status DurableSystem::CheckUsable() const {
  if (broken_) {
    return Status::FailedPrecondition(
        "durable system is fail-stopped; reopen the directory to recover");
  }
  return Status::OK();
}

Result<uint64_t> DurableSystem::Ingest(Object object) {
  MQA_RETURN_NOT_OK(CheckUsable());
  // Validate before logging: a record that deterministically fails to
  // apply would also fail replay, bricking recovery.
  MQA_RETURN_NOT_OK(coordinator_->kb().ValidateObject(object));
  std::string payload;
  SerializeObject(object, &payload);
  Result<uint64_t> seq = wal_->Append(WalRecordType::kInsert, payload);
  if (!seq.ok()) {
    // Nothing was applied; but a torn write leaves the log tail unknown,
    // in which case the writer fail-stops and so do we.
    if (wal_->broken()) broken_ = true;
    return seq.status();
  }
  Result<uint64_t> id = coordinator_->IngestObject(std::move(object));
  if (!id.ok()) {
    // The log says the insert happened; memory disagrees. Fail-stop —
    // recovery will retry the apply from the log.
    broken_ = true;
    return id.status();
  }
  applied_seq_ = seq.Value();
  return id;
}

Status DurableSystem::Remove(uint64_t id) {
  MQA_RETURN_NOT_OK(CheckUsable());
  if (id >= coordinator_->kb().size()) {
    return Status::NotFound("object id out of range: " + std::to_string(id));
  }
  if (coordinator_->kb().IsDeleted(id)) {
    return Status::NotFound("object " + std::to_string(id) +
                            " is already deleted");
  }
  Result<uint64_t> seq =
      wal_->Append(WalRecordType::kRemove, EncodeRemovePayload(id));
  if (!seq.ok()) {
    if (wal_->broken()) broken_ = true;
    return seq.status();
  }
  const Status applied = coordinator_->RemoveObject(id);
  if (!applied.ok()) {
    broken_ = true;
    return applied;
  }
  applied_seq_ = seq.Value();
  return MaybeCompactAndCheckpoint();
}

Status DurableSystem::Flush() {
  MQA_RETURN_NOT_OK(CheckUsable());
  const Status st = wal_->Sync();
  if (!st.ok() && wal_->broken()) broken_ = true;
  return st;
}

Status DurableSystem::MaybeCompactAndCheckpoint() {
  if (coordinator_->GarbageRatio() < options_.checkpoint_garbage_ratio) {
    return Status::OK();
  }
  const Status compacted = coordinator_->CompactNow();
  if (!compacted.ok()) {
    // Nothing committed (CompactNow is error-atomic): keep serving with
    // tombstones and try again after the next delete.
    coordinator_->monitor().EmitDegraded(
        ComponentStage::kIndexConstruction,
        "durable compaction failed (" + compacted.message() +
            "); serving with tombstones");
    return Status::OK();
  }
  const Status checkpointed = Checkpoint();
  if (!checkpointed.ok()) {
    // Ids were just re-densified in memory but the snapshot + WAL on disk
    // still describe the old id space. Any further logged mutation would
    // carry post-compaction ids that replay cannot interpret — fail-stop.
    // The mutation that triggered this is applied and logged, so its ack
    // stands (OK); recovery from the old snapshot + full WAL is correct.
    broken_ = true;
    coordinator_->monitor().EmitDegraded(
        ComponentStage::kIndexConstruction,
        "checkpoint failed after compaction (" + checkpointed.message() +
            "); mutations fail-stopped until reopen");
  }
  return Status::OK();
}

Status DurableSystem::Checkpoint() {
  MQA_RETURN_NOT_OK(CheckUsable());
  const std::string name = SnapshotName(applied_seq_);
  MQA_RETURN_NOT_OK(
      SaveSystemState(*coordinator_, PathJoin(dir_, name)));
  // Publishing CURRENT is the commit point; it is atomic (temp + rename),
  // so a crash leaves either the old snapshot or the new one live.
  MQA_RETURN_NOT_OK(WriteFileAtomic(
      PathJoin(dir_, kCurrentFile),
      name + "\n" + std::to_string(applied_seq_) + "\n"));
  checkpoint_seq_ = applied_seq_;
  MQA_RETURN_NOT_OK(wal_->Truncate());

  // Garbage-collect old snapshot directories, best effort: keep the live
  // one plus up to keep_snapshots predecessors.
  std::vector<uint64_t> old_seqs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("snapshot-", 0) != 0 || fname == name) continue;
    char* end = nullptr;
    const std::string digits = fname.substr(9);
    const uint64_t seq = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str()) old_seqs.push_back(seq);
  }
  std::sort(old_seqs.begin(), old_seqs.end());
  const size_t keep =
      options_.keep_snapshots > 0
          ? static_cast<size_t>(options_.keep_snapshots)
          : 0;
  while (old_seqs.size() > keep) {
    std::filesystem::remove_all(PathJoin(dir_, SnapshotName(old_seqs.front())),
                                ec);
    old_seqs.erase(old_seqs.begin());
  }
  return Status::OK();
}

Status DurableSystem::CrashForTest() {
  const Status st = wal_->CrashDiscardUnsynced();
  broken_ = true;
  return st;
}

uint64_t DurableSystem::last_durable_seq() const {
  const uint64_t wal_synced =
      wal_ != nullptr ? wal_->last_synced_seq() : 0;
  return std::max(checkpoint_seq_, wal_synced);
}

}  // namespace mqa
