#ifndef MQA_CORE_EXPERIMENT_H_
#define MQA_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/represent.h"
#include "encoder/sim_encoders.h"
#include "retrieval/framework.h"
#include "storage/world.h"

namespace mqa {

/// A fully prepared experimental corpus: world model, knowledge base,
/// encoders, encoded vector store and (optionally learned) weights. The
/// shared substrate of the test suite and every benchmark.
struct ExperimentCorpus {
  std::unique_ptr<World> world;
  std::unique_ptr<KnowledgeBase> kb;
  std::unique_ptr<EncoderSet> encoders;
  RepresentedCorpus represented;
};

/// Builds an ExperimentCorpus end to end (generate corpus -> encode ->
/// learn weights).
Result<ExperimentCorpus> MakeExperimentCorpus(
    const WorldConfig& world_config, uint64_t corpus_size,
    const std::string& encoder_preset = "sim-clip",
    uint32_t embedding_dim = 32, bool learn_weights = true,
    uint64_t num_triplets = 1500);

/// Encodes a text-only retrieval query. When `cross_modal_fill` is set the
/// text embedding also populates the other modality blocks (aligned
/// space), which is how all frameworks receive round-1 queries.
Result<RetrievalQuery> EncodeTextQuery(const ExperimentCorpus& corpus,
                                       const std::string& text,
                                       bool cross_modal_fill = true);

/// Encodes a round-2 query: the selected/uploaded image plus feedback text.
Result<RetrievalQuery> EncodeImageTextQuery(const ExperimentCorpus& corpus,
                                            const Object& image_source,
                                            const std::string& text);

/// Fraction of results whose object belongs to `target_concept`.
double ConceptPrecision(const std::vector<Neighbor>& results,
                        const KnowledgeBase& kb, uint32_t target_concept);

/// Fraction of the ground-truth ids present in the results.
double GroundTruthHitRate(const std::vector<Neighbor>& results,
                          const std::vector<uint32_t>& ground_truth);

/// Normalized discounted cumulative gain at the result-list length: a
/// ground-truth id at rank r contributes 1/log2(r+2), normalized by the
/// ideal ordering. 1.0 = the ground truth, in order, at the top.
double Ndcg(const std::vector<Neighbor>& results,
            const std::vector<uint32_t>& ground_truth);

/// Reciprocal rank of the first ground-truth id in the results (0 when
/// none appears).
double ReciprocalRank(const std::vector<Neighbor>& results,
                      const std::vector<uint32_t>& ground_truth);

/// Per-dialogue metrics of the two-round interaction protocol (Figure 5):
/// round 1 is a text query for a concept; a simulated user then selects
/// the returned result closest to intent and asks for an attribute change;
/// round 2 retrieves with the selected image + modification text.
struct DialogueOutcome {
  double round1_precision = 0;  ///< concept precision, round 1
  double round2_precision = 0;  ///< target-concept precision, round 2
  double round1_hit = 0;        ///< ground-truth hit rate, round 1
  double round2_hit = 0;        ///< ground-truth hit rate, round 2
  double round1_ms = 0;
  double round2_ms = 0;
  uint64_t dist_comps = 0;      ///< across both rounds
};

/// Runs one two-round dialogue against a framework. Deterministic given
/// the rng state.
/// `round2_weights` (optional) is a query-time modality-weight override
/// applied in round 2 only — the configuration panel's "adjust weights at
/// the query point" knob (e.g. boost text for attribute modifications).
Result<DialogueOutcome> RunTwoRoundDialogue(
    const ExperimentCorpus& corpus, RetrievalFramework* framework,
    uint32_t concept_id, Rng* rng, const SearchParams& params,
    const std::vector<float>& round2_weights = {});

/// Averages `num_dialogues` dialogues over round-robin concepts.
Result<DialogueOutcome> RunDialogueSuite(
    const ExperimentCorpus& corpus, RetrievalFramework* framework,
    size_t num_dialogues, uint64_t seed, const SearchParams& params,
    const std::vector<float>& round2_weights = {});

}  // namespace mqa

#endif  // MQA_CORE_EXPERIMENT_H_
