#ifndef MQA_CORE_ANSWER_GENERATOR_H_
#define MQA_CORE_ANSWER_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/language_model.h"
#include "llm/prompt_builder.h"

namespace mqa {

/// Side-channel outputs of one generation round (the prompt that was sent
/// and the fallback disposition), returned explicitly by GenerateTurn so
/// concurrent serving threads never share mutable generator state.
struct GenerationOutcome {
  std::string prompt;  ///< full prompt sent to the LLM (empty without LLM)
  bool used_fallback = false;
  Status failure = Status::OK();  ///< the failure behind the fallback
};

/// The Answer Generation component: assembles a retrieval-augmented prompt
/// (query + dialogue history + retrieved context) and asks the configured
/// LLM for a conversational reply. Without an LLM it falls back to a plain
/// formatted result listing, matching the paper's "in the absence of an
/// available LLM, users can still carry out a multi-modal QA procedure".
///
/// Graceful degradation: when the LLM call fails with a *transient* error
/// (kUnavailable from an open circuit breaker, kDeadlineExceeded,
/// kResourceExhausted), the generator degrades to the same extractive
/// listing instead of failing the whole round — the retrieved results are
/// the answer. Permanent errors still propagate. The last round's fallback
/// state is observable via last_used_fallback()/last_failure().
class AnswerGenerator {
 public:
  /// `llm` may be null (no-LLM mode).
  AnswerGenerator(std::unique_ptr<LanguageModel> llm, float temperature)
      : llm_(std::move(llm)), temperature_(temperature) {}

  /// Produces the user-facing answer for one round and records the turn in
  /// the dialogue history.
  Result<std::string> Generate(const std::string& query_text,
                               const std::vector<RetrievedItem>& context);

  /// Stateless flavour for the concurrent serving path: the dialogue
  /// history lives in the caller-owned `builder` (one per session) and
  /// the per-round telemetry in `outcome`, so concurrent calls with
  /// distinct builders are safe — this object is only read. The turn is
  /// recorded into `builder` exactly as Generate records into the
  /// internal one. `builder` and `outcome` must be non-null.
  Result<std::string> GenerateTurn(const std::string& query_text,
                                   const std::vector<RetrievedItem>& context,
                                   PromptBuilder* builder,
                                   GenerationOutcome* outcome) const;

  void ClearHistory() { builder_.ClearHistory(); }
  size_t history_size() const { return builder_.history_size(); }
  bool has_llm() const { return llm_ != nullptr; }
  const LanguageModel* llm() const { return llm_.get(); }

  /// The last prompt sent to the LLM (for the status panel and tests).
  const std::string& last_prompt() const { return last_prompt_; }

  /// True when the most recent Generate() degraded to the extractive
  /// answer because the LLM was unreachable.
  bool last_used_fallback() const { return last_used_fallback_; }
  /// The LLM failure that triggered the most recent fallback (OK when the
  /// last round did not fall back).
  const Status& last_failure() const { return last_failure_; }

 private:
  /// The no-LLM answer: a formatted listing of the retrieved context.
  static std::string ExtractiveAnswer(
      const std::vector<RetrievedItem>& context, bool llm_down);

  PromptBuilder builder_;
  std::unique_ptr<LanguageModel> llm_;
  float temperature_;
  std::string last_prompt_;
  bool last_used_fallback_ = false;
  Status last_failure_ = Status::OK();
};

}  // namespace mqa

#endif  // MQA_CORE_ANSWER_GENERATOR_H_
