#ifndef MQA_CORE_STATUS_MONITOR_H_
#define MQA_CORE_STATUS_MONITOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/sync.h"

namespace mqa {

/// The five backend components of Figure 2 (plus the coordinator itself).
enum class ComponentStage {
  kDataPreprocessing,
  kVectorRepresentation,
  kIndexConstruction,
  kQueryExecution,
  kAnswerGeneration,
  kCoordinator,
};

const char* ComponentStageToString(ComponentStage stage);

/// One milestone line of the status-monitoring panel.
struct StatusEvent {
  ComponentStage stage = ComponentStage::kCoordinator;
  std::string message;
  double elapsed_ms = 0.0;
  bool completed = true;
  /// The stage finished, but in degraded mode (fallback answer, dropped
  /// modality, partial disk results, ...). Rendered as "[!]".
  bool degraded = false;
};

/// Collects milestone events ("data preprocessing done: 5000 objects, 2
/// modalities", ...) and forwards them to an optional subscriber — the
/// backend half of the paper's status monitoring panel.
///
/// Thread-safe: pipeline stages running on the DAG executor may Emit
/// concurrently, so the history is mutex-guarded and `history()` returns a
/// snapshot. The subscriber callback is invoked outside the lock (a
/// callback that re-enters the monitor must not assume ordering against
/// concurrent emitters).
class StatusMonitor {
 public:
  using Callback = std::function<void(const StatusEvent&)>;

  /// Registers a subscriber (replaces any previous one).
  void Subscribe(Callback callback) {
    MutexLock lock(&mu_);
    callback_ = std::move(callback);
  }

  /// Records an event and notifies the subscriber.
  void Emit(StatusEvent event);
  void Emit(ComponentStage stage, std::string message,
            double elapsed_ms = 0.0);

  /// Records a degraded-mode event (the stage delivered a reduced result).
  void EmitDegraded(ComponentStage stage, std::string message,
                    double elapsed_ms = 0.0);

  /// Snapshot of all events recorded so far.
  std::vector<StatusEvent> history() const {
    MutexLock lock(&mu_);
    return history_;
  }

  void Clear() {
    MutexLock lock(&mu_);
    history_.clear();
  }

  /// Renders the history as the panel would show it (one line per event).
  std::string Render() const;

 private:
  mutable Mutex mu_;
  Callback callback_ MQA_GUARDED_BY(mu_);
  std::vector<StatusEvent> history_ MQA_GUARDED_BY(mu_);
};

}  // namespace mqa

#endif  // MQA_CORE_STATUS_MONITOR_H_
