#ifndef MQA_CORE_PERSISTENCE_H_
#define MQA_CORE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/coordinator.h"

namespace mqa {

/// Persists a built system to a directory so it can be reopened without
/// re-encoding the corpus or rebuilding the index:
///
///   <dir>/kb.bin       knowledge base (objects + payloads)
///   <dir>/store.bin    encoded multi-vector store
///   <dir>/index.bin    the navigation graph (flat graph indexes only)
///   <dir>/config.txt   the MqaConfig in config-parser syntax
///   <dir>/weights.txt  learned modality weights
///
/// Only the MUST framework over a flat graph index ("kgraph", "nsg",
/// "vamana", "mqa-hybrid") round-trips today; other index kinds rebuild on
/// load (their build is either cheap, like bruteforce, or fast, like
/// hnsw). The directory is created if missing, and every file is written
/// atomically (temp file + fsync + rename): a crash mid-save leaves the
/// previous snapshot intact, never a half-written one.
Status SaveSystemState(const Coordinator& coordinator,
                       const std::string& dir);

/// Reopens a system saved with SaveSystemState. The world model is
/// regenerated deterministically from the saved config; knowledge base,
/// encoded store, weights — and the index when available — are loaded
/// from disk.
Result<std::unique_ptr<Coordinator>> LoadSystemState(const std::string& dir);

/// LoadSystemState with a caller-supplied config instead of the saved
/// config.txt. The durable system uses this to reopen snapshots under the
/// live configuration — preserving non-serializable settings (clocks,
/// resilience options) that the text round-trip would drop.
Result<std::unique_ptr<Coordinator>> LoadSystemStateWithConfig(
    const MqaConfig& config, const std::string& dir);

/// Serializes a config back into config-parser syntax (the subset of keys
/// the parser understands; see config_parser.h).
std::string MqaConfigToText(const MqaConfig& config);

}  // namespace mqa

#endif  // MQA_CORE_PERSISTENCE_H_
