#ifndef MQA_CORE_CONFIG_H_
#define MQA_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/index.h"
#include "graph/index_factory.h"
#include "learning/weight_learner.h"
#include "shard/shard_options.h"
#include "storage/world.h"

namespace mqa {

class Clock;

/// Knobs of the resilient online pipeline (PR 4). Disabled by default so
/// that existing configurations keep their exact behaviour; when enabled,
/// the coordinator wraps the LLM in a ResilientLlm (retry + deadline +
/// circuit breaker), the query executor retries encoders and drops faulted
/// modalities, and degradations surface as flagged status events.
struct ResilienceOptions {
  bool enable = false;

  // LLM hop: retry policy + circuit breaker.
  int llm_max_attempts = 3;
  double llm_initial_backoff_ms = 10.0;
  double llm_backoff_multiplier = 2.0;
  double llm_max_backoff_ms = 1000.0;
  double llm_per_attempt_deadline_ms = 0.0;  ///< 0 = no per-attempt deadline
  double llm_overall_deadline_ms = 0.0;      ///< 0 = no overall deadline
  int breaker_failure_threshold = 5;
  double breaker_open_ms = 1000.0;
  int breaker_half_open_successes = 2;

  // Encoder hop: a smaller retry budget (encoding is cheap to re-run).
  int encoder_max_attempts = 2;
  double encoder_initial_backoff_ms = 1.0;

  /// Non-owning clock override so tests drive backoff and breaker
  /// cool-downs through a MockClock without ever sleeping. Null = the real
  /// SystemClock.
  Clock* clock = nullptr;
};

/// Knobs of the observability layer (metrics + per-turn tracing). Metrics
/// (MetricsRegistry::Global()) are always on — recording is a relaxed
/// atomic per event. Tracing allocates a small span tree per query turn;
/// it defaults on (the paper's status-monitoring panel needs it) and can
/// be disabled for benchmark runs chasing the last microsecond.
struct ObservabilityOptions {
  /// Build a Trace for every Coordinator::Ask (exposed on AnswerTurn).
  bool trace_turns = true;
  /// Also emit the human-readable per-turn breakdown (Trace::Render)
  /// through the StatusMonitor — the `--explain` view.
  bool explain_turns = false;
  /// Trace the offline build pipeline (Coordinator::Create).
  bool trace_build = true;
  /// Non-owning clock for trace timestamps; null = SystemClock. Tests use
  /// a MockClock so span durations are exact.
  Clock* clock = nullptr;
};

/// Knobs of the concurrent serving front end (src/server/): worker pool,
/// admission-controlled request queue, overload circuit breaker and
/// cross-query batching. Defaults give a small but real server; tests set
/// `clock` to a MockClock for fully deterministic scheduling.
struct ServingOptions {
  size_t num_workers = 4;      ///< turn-executing worker threads (min 1)
  size_t queue_capacity = 64;  ///< bounded request queue (admission control)
  /// Per-turn deadline applied at admission when the query has none;
  /// 0 = no default deadline.
  double default_deadline_ms = 0.0;

  // Cross-query batching inside the executor (encode + graph search).
  bool enable_batching = true;
  size_t max_batch = 8;              ///< flush when this many requests wait
  double batch_flush_slack_ms = 1.0; ///< flush when deadline slack runs low

  // Overload breaker at the admission door, fed only by overload signals
  // (queue-full sheds and deadline expiries).
  int breaker_failure_threshold = 8;
  double breaker_open_ms = 500.0;
  int breaker_half_open_successes = 2;

  /// Non-owning clock driving deadlines, queue-wait accounting and the
  /// breaker cool-down. Null = the real SystemClock.
  Clock* clock = nullptr;
};

/// Knobs of tombstone compaction (live deletion hygiene). Deletes mark
/// objects as tombstoned — cheap, but dead graph nodes keep absorbing
/// traversal work. Once the garbage ratio crosses the threshold, the
/// coordinator compacts: the knowledge base, encoded store and index are
/// rewritten without the dead entries. The compactor sits behind its own
/// circuit breaker so a persistently failing compaction degrades to
/// tombstone-only service instead of retry-storming.
struct CompactionOptions {
  bool auto_compact = true;     ///< compact opportunistically after deletes
  double garbage_ratio = 0.25;  ///< trigger: deleted / total above this
  /// Minimum spacing between auto-compactions (0 = none). Uses the
  /// resilience clock, so MockClock tests control the cadence.
  double min_interval_ms = 0.0;
  int breaker_failure_threshold = 3;
  double breaker_open_ms = 5000.0;
};

/// Everything the frontend's configuration panel edits, in one struct:
/// knowledge base, embedding, weight learning, index, retrieval and LLM
/// settings.
struct MqaConfig {
  // --- Knowledge base (Data Preprocessing) ---
  /// When false the system runs retrieval-free: answers come from the LLM
  /// alone (the paper's "external knowledge ingestion is optional").
  bool enable_knowledge_base = true;
  WorldConfig world;            ///< synthetic-world substrate parameters
  uint64_t corpus_size = 5000;  ///< objects to ingest
  std::string kb_name = "demo-kb";

  // --- Vector representation ---
  std::string encoder_preset = "sim-clip";
  uint32_t embedding_dim = 32;

  // --- Vector weight learning ---
  bool learn_weights = true;
  WeightLearnerConfig learner;
  uint64_t num_training_triplets = 2000;

  // --- Index construction ---
  IndexConfig index;

  // --- Retrieval ---
  std::string framework = "must";  ///< "must" | "mr" | "je"
  /// Fault-isolated sharded retrieval over `framework` (src/shard/):
  /// partitioned corpus, fan-out with per-shard breakers, hedging and a
  /// partial-result quorum. Off by default (single index, as before).
  ShardOptions shard;
  SearchParams search;             ///< default k and beam width
  /// Resolve vague follow-ups ("show me more") against dialogue history
  /// before retrieval (the intelligent multi-modal search procedure).
  bool rewrite_vague_queries = true;

  // --- Answer generation ---
  std::string llm = "sim-llm";  ///< "sim-llm" | "none"
  float temperature = 0.2f;

  // --- Resilience (fault handling in the online pipeline) ---
  ResilienceOptions resilience;

  // --- Live deletion & tombstone compaction ---
  CompactionOptions compaction;

  // --- Observability (metrics + tracing) ---
  ObservabilityOptions observability;

  // --- Serving (multi-session server + cross-query batching) ---
  ServingOptions serving;

  /// SIMD tier of the distance kernels: "auto" (detect via CPUID),
  /// "scalar", "avx2" or "avx512". Requests above what the CPU supports
  /// clamp down with a logged note; the MQA_SIMD_LEVEL environment
  /// variable is consulted when this is left at "auto".
  std::string simd_level = "auto";

  uint64_t seed = 42;
};

}  // namespace mqa

#endif  // MQA_CORE_CONFIG_H_
