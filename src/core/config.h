#ifndef MQA_CORE_CONFIG_H_
#define MQA_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "graph/index.h"
#include "graph/index_factory.h"
#include "learning/weight_learner.h"
#include "storage/world.h"

namespace mqa {

/// Everything the frontend's configuration panel edits, in one struct:
/// knowledge base, embedding, weight learning, index, retrieval and LLM
/// settings.
struct MqaConfig {
  // --- Knowledge base (Data Preprocessing) ---
  /// When false the system runs retrieval-free: answers come from the LLM
  /// alone (the paper's "external knowledge ingestion is optional").
  bool enable_knowledge_base = true;
  WorldConfig world;            ///< synthetic-world substrate parameters
  uint64_t corpus_size = 5000;  ///< objects to ingest
  std::string kb_name = "demo-kb";

  // --- Vector representation ---
  std::string encoder_preset = "sim-clip";
  uint32_t embedding_dim = 32;

  // --- Vector weight learning ---
  bool learn_weights = true;
  WeightLearnerConfig learner;
  uint64_t num_training_triplets = 2000;

  // --- Index construction ---
  IndexConfig index;

  // --- Retrieval ---
  std::string framework = "must";  ///< "must" | "mr" | "je"
  SearchParams search;             ///< default k and beam width
  /// Resolve vague follow-ups ("show me more") against dialogue history
  /// before retrieval (the intelligent multi-modal search procedure).
  bool rewrite_vague_queries = true;

  // --- Answer generation ---
  std::string llm = "sim-llm";  ///< "sim-llm" | "none"
  float temperature = 0.2f;

  uint64_t seed = 42;
};

}  // namespace mqa

#endif  // MQA_CORE_CONFIG_H_
