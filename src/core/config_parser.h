#ifndef MQA_CORE_CONFIG_PARSER_H_
#define MQA_CORE_CONFIG_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/config.h"

namespace mqa {

/// Parses `key = value` lines into an MqaConfig — the textual equivalent
/// of the frontend's configuration panel. Unknown keys and malformed
/// values are errors (fail fast on typos). Blank lines and lines starting
/// with '#' are ignored.
///
/// Recognized keys:
///   enable_knowledge_base   bool   ("true"/"false"/"1"/"0")
///   corpus_size             uint
///   kb_name                 string
///   encoder                 string ("sim-clip" | "sim-resnet-lstm" | ...)
///   embedding_dim           uint
///   learn_weights           bool
///   training_triplets       uint
///   index.algorithm         string ("mqa-hybrid" | "hnsw" | "starling" ...)
///   index.max_degree        uint
///   index.build_beam        uint
///   index.alpha             float
///   framework               string ("must" | "mr" | "je")
///   search.k                uint
///   search.beam_width       uint
///   llm                     string ("sim-llm" | "none")
///   temperature             float
///   seed                    uint
///   world.num_concepts      uint
///   world.latent_dim        uint
///   world.raw_image_dim     uint
///   world.seed              uint   (overrides the top-level seed)
///   world.words_per_concept uint
///   world.adjectives_per_noun uint
///   world.extra_modalities  uint
///   world.object_noise      float
///   world.adjective_dropout float
///   world.image_noise       float
///   world.text_noise        float
///   serving.num_workers     uint
///   serving.queue_capacity  uint
///   serving.default_deadline_ms float
///   serving.enable_batching bool
///   serving.max_batch       uint
///   serving.batch_flush_slack_ms float
///   serving.breaker_threshold uint
///   serving.breaker_open_ms float
/// plus the `resilience.*` and `observability.*` knob groups (see
/// config_parser.cc for the full key-by-key mapping).
Result<MqaConfig> ParseMqaConfig(const std::vector<std::string>& lines);

/// Convenience: splits `text` on newlines and parses.
Result<MqaConfig> ParseMqaConfigText(const std::string& text);

}  // namespace mqa

#endif  // MQA_CORE_CONFIG_PARSER_H_
