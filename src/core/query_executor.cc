#include "core/query_executor.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/trace.h"
#include "vector/distance.h"

namespace mqa {

namespace {

/// RAII bracket around one execution stage: tells the serving hooks which
/// stage this thread is in (see ExecutionHooks::phase_begin).
class PhaseScope {
 public:
  PhaseScope(const ExecutionHooks* hooks, ExecPhase phase)
      : hooks_(hooks), phase_(phase) {
    if (hooks_ != nullptr && hooks_->phase_begin) hooks_->phase_begin(phase_);
  }
  ~PhaseScope() {
    if (hooks_ != nullptr && hooks_->phase_end) hooks_->phase_end(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const ExecutionHooks* const hooks_;
  const ExecPhase phase_;
};

}  // namespace

QueryExecutor::QueryExecutor(const KnowledgeBase* kb,
                             const EncoderSet* encoders,
                             RetrievalFramework* framework)
    : kb_(kb), encoders_(encoders), framework_(framework) {}

std::optional<size_t> QueryExecutor::SlotOfType(ModalityType type) const {
  const ModalitySchema& schema = kb_->schema();
  for (size_t m = 0; m < schema.num_modalities(); ++m) {
    if (schema.types[m] == type) return m;
  }
  return std::nullopt;
}

void QueryExecutor::EnableResilience(const RetryPolicy& retry, Clock* clock) {
  resilience_ = true;
  encoder_retry_ = retry;
  clock_ = clock;
}

Result<Vector> QueryExecutor::EncodeSlot(size_t slot, const Payload& payload,
                                         int64_t deadline_micros) const {
  const ExecutionHooks* hooks = hooks_.get();
  auto encode_once = [&]() -> Result<Vector> {
    if (hooks != nullptr && hooks->encode) {
      return hooks->encode(slot, payload, deadline_micros);
    }
    return encoders_->EncodeModality(slot, payload);
  };
  if (!resilience_) return encode_once();
  // The retry wraps the hook: a failed attempt re-enters the batcher as a
  // fresh request and may coalesce with a different batch.
  Retrier retrier(encoder_retry_, clock_);
  return retrier.Run<Vector>(encode_once);
}

Result<RetrievalQuery> QueryExecutor::EncodeUserQuery(
    const UserQuery& query, std::vector<std::string>* degradation) const {
  Span span("query/encode");
  PhaseScope phase(hooks_.get(), ExecPhase::kEncode);
  RetrievalQuery out;
  out.modalities.parts.resize(encoders_->num_modalities());
  out.weights = query.weight_override;

  // Encodes one requested modality into its slot. Under resilience, a
  // transient encoder failure (after retries) *drops* the modality instead
  // of failing the query: the slot stays empty, the framework renormalizes
  // the weights over the survivors, and a degradation note records the
  // outage. Permanent errors always propagate.
  bool any = false;
  uint64_t dropped = 0;
  auto encode_into_slot = [&](size_t slot, const Payload& payload,
                              const char* label) -> Status {
    Result<Vector> encoded = EncodeSlot(slot, payload, query.deadline_micros);
    if (encoded.ok()) {
      out.modalities.parts[slot] = std::move(encoded).Value();
      any = true;
      return Status::OK();
    }
    if (resilience_ && encoded.status().IsRetryable()) {
      ++dropped;
      if (degradation != nullptr) {
        degradation->push_back(std::string("dropped ") + label +
                               " modality: " + encoded.status().message());
      }
      return Status::OK();
    }
    return encoded.status();
  };

  if (!query.text.empty()) {
    const std::optional<size_t> slot = SlotOfType(ModalityType::kText);
    if (!slot.has_value()) {
      return Status::FailedPrecondition("knowledge base has no text modality");
    }
    Payload p;
    p.type = ModalityType::kText;
    p.text = query.text;
    MQA_RETURN_NOT_OK(encode_into_slot(*slot, p, "text"));
  }

  // Image part: an upload wins over a clicked previous result.
  const Payload* image = nullptr;
  if (query.uploaded_image.has_value()) {
    image = &*query.uploaded_image;
  } else if (query.selected_object.has_value()) {
    MQA_ASSIGN_OR_RETURN(const Object* obj,
                         kb_->Get(*query.selected_object));
    const std::optional<size_t> slot = SlotOfType(ModalityType::kImage);
    if (slot.has_value()) image = &obj->modalities[*slot];
  }
  if (image != nullptr) {
    const std::optional<size_t> slot = SlotOfType(ModalityType::kImage);
    if (!slot.has_value()) {
      return Status::FailedPrecondition(
          "knowledge base has no image modality");
    }
    MQA_RETURN_NOT_OK(encode_into_slot(*slot, *image, "image"));
  }

  if (!any) {
    if (dropped > 0) {
      return Status::Unavailable(
          "every query modality failed to encode (all encoders down)");
    }
    return Status::InvalidArgument(
        "query must contain text, an uploaded image, or a selected result");
  }
  // Drop uninformative parts: a contentless utterance ("more like this")
  // embeds with low energy; keeping it would only add noise next to a
  // strong modality.
  float strongest = 0.0f;
  for (const Vector& part : out.modalities.parts) {
    if (!part.empty()) {
      strongest = std::max(strongest, Norm(part.data(), part.size()));
    }
  }
  if (strongest >= 0.5f) {
    for (Vector& part : out.modalities.parts) {
      if (!part.empty() && Norm(part.data(), part.size()) < 0.4f) {
        part.clear();
      }
    }
  }
  // Cross-modal projection: a single-modality query also searches the
  // other modality blocks through the aligned embedding space.
  CrossModalFill(&out.modalities);
  return out;
}

Result<QueryOutcome> QueryExecutor::Execute(const UserQuery& query,
                                            const SearchParams& params) {
  Span span("query/execute");
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetCounter("query/executions")->Increment();
  if (query.deadline_micros > 0) {
    Clock* clock = clock_ != nullptr ? clock_ : SystemClock();
    if (clock->NowMicros() >= query.deadline_micros) {
      return Status::DeadlineExceeded(
          "query deadline expired before execution");
    }
  }
  QueryOutcome outcome;
  MQA_ASSIGN_OR_RETURN(RetrievalQuery rq,
                       EncodeUserQuery(query, &outcome.degradation));
  // Deadline-aware frameworks (the sharded fan-out) slice their per-shard
  // time budgets from the turn deadline.
  rq.deadline_micros = query.deadline_micros;
  SearchParams effective = params;
  if (query.object_filter) {
    const KnowledgeBase* kb = kb_;
    auto object_filter = query.object_filter;
    effective.filter = [kb, object_filter](uint32_t id) {
      return id < kb->size() && object_filter(kb->at(id));
    };
  }
  {
    Span retrieve_span("query/retrieve");
    const ExecutionHooks* hooks = hooks_.get();
    PhaseScope search_phase(hooks, ExecPhase::kSearch);
    Result<RetrievalResult> retrieved =
        (hooks != nullptr && hooks->search)
            ? hooks->search(rq, effective, query.deadline_micros)
            : framework_->Retrieve(rq, effective);
    if (retrieved.ok()) {
      outcome.retrieval = std::move(retrieved).Value();
    } else if (resilience_ && retrieved.status().IsRetryable() &&
               retrieved.status().code() != StatusCode::kDeadlineExceeded) {
      // Transient retrieval outage (e.g. the shard quorum was missed):
      // degrade to an answer without retrieved context instead of failing
      // the round. Deadline expiries still propagate — the serving layer
      // sheds those, and a late answer helps nobody.
      outcome.degradation.push_back(
          "retrieval unavailable (" + retrieved.status().message() +
          "); answering without retrieved context");
      outcome.retrieval = RetrievalResult{};
    } else {
      return retrieved.status();
    }
  }
  metrics.GetCounter("query/hops")
      ->Increment(outcome.retrieval.stats.hops);
  metrics.GetCounter("query/dist_comps")
      ->Increment(outcome.retrieval.stats.dist_comps);
  if (outcome.retrieval.stats.partial) {
    outcome.degradation.push_back(
        "disk index served partial (cache-only) results after " +
        std::to_string(outcome.retrieval.stats.io_errors) + " I/O errors");
  }
  if (outcome.retrieval.stats.shards_total > 0 &&
      outcome.retrieval.stats.shards_ok <
          outcome.retrieval.stats.shards_total) {
    outcome.degradation.push_back(
        "shard coverage " +
        std::to_string(outcome.retrieval.stats.shards_ok) + "/" +
        std::to_string(outcome.retrieval.stats.shards_total) +
        ": results may be missing entries from unreachable shards");
  }
  if (!outcome.degradation.empty()) {
    metrics.GetCounter("query/degraded")->Increment();
  }
  // Preference markers: items sharing the clicked result's concept are
  // flagged for the answer generator.
  std::optional<uint32_t> preferred_concept;
  if (query.selected_object.has_value()) {
    MQA_ASSIGN_OR_RETURN(const Object* sel,
                         kb_->Get(*query.selected_object));
    preferred_concept = sel->concept_id;
  }
  outcome.items.reserve(outcome.retrieval.neighbors.size());
  for (const Neighbor& n : outcome.retrieval.neighbors) {
    MQA_ASSIGN_OR_RETURN(const Object* obj, kb_->Get(n.id));
    RetrievedItem item{obj->id, DescribeObject(*obj), n.distance};
    item.preferred = preferred_concept.has_value() &&
                     obj->concept_id == *preferred_concept;
    outcome.items.push_back(std::move(item));
  }
  return outcome;
}

std::string DescribeObject(const Object& object) {
  std::string out = "object #" + std::to_string(object.id);
  for (const Payload& p : object.modalities) {
    if (p.text.empty()) continue;
    out += " | ";
    out += p.text;
  }
  return out;
}

}  // namespace mqa
