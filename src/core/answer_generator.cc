#include "core/answer_generator.h"

namespace mqa {

Result<std::string> AnswerGenerator::Generate(
    const std::string& query_text,
    const std::vector<RetrievedItem>& context) {
  std::string answer;
  if (llm_ != nullptr) {
    last_prompt_ = builder_.Build(query_text, context);
    LlmRequest request;
    request.prompt = last_prompt_;
    request.temperature = temperature_;
    MQA_ASSIGN_OR_RETURN(LlmResponse response, llm_->Complete(request));
    answer = response.text;
  } else {
    // Plain formatted listing: direct engagement with query execution.
    if (context.empty()) {
      answer = "No results (no knowledge base or LLM configured).";
    } else {
      answer = "Retrieved " + std::to_string(context.size()) + " results:\n";
      for (size_t i = 0; i < context.size(); ++i) {
        answer += "  " + std::to_string(i + 1) + ") " +
                  context[i].description + "\n";
      }
    }
  }
  builder_.AddTurn(query_text, answer);
  return answer;
}

}  // namespace mqa
