#include "core/answer_generator.h"

namespace mqa {

std::string AnswerGenerator::ExtractiveAnswer(
    const std::vector<RetrievedItem>& context, bool llm_down) {
  std::string answer;
  if (context.empty()) {
    answer = llm_down
                 ? "The language model is currently unavailable and no "
                   "results were retrieved; please try again."
                 : "No results (no knowledge base or LLM configured).";
    return answer;
  }
  answer = llm_down ? "The language model is currently unavailable; here "
                      "are the retrieved results:\n"
                    : "Retrieved " + std::to_string(context.size()) +
                          " results:\n";
  for (size_t i = 0; i < context.size(); ++i) {
    answer +=
        "  " + std::to_string(i + 1) + ") " + context[i].description + "\n";
  }
  return answer;
}

Result<std::string> AnswerGenerator::Generate(
    const std::string& query_text,
    const std::vector<RetrievedItem>& context) {
  GenerationOutcome outcome;
  Result<std::string> answer =
      GenerateTurn(query_text, context, &builder_, &outcome);
  last_prompt_ = std::move(outcome.prompt);
  last_used_fallback_ = outcome.used_fallback;
  last_failure_ = outcome.failure;
  return answer;
}

Result<std::string> AnswerGenerator::GenerateTurn(
    const std::string& query_text, const std::vector<RetrievedItem>& context,
    PromptBuilder* builder, GenerationOutcome* outcome) const {
  *outcome = GenerationOutcome();
  std::string answer;
  if (llm_ != nullptr) {
    outcome->prompt = builder->Build(query_text, context);
    LlmRequest request;
    request.prompt = outcome->prompt;
    request.temperature = temperature_;
    Result<LlmResponse> response = llm_->Complete(request);
    if (response.ok()) {
      answer = std::move(response).Value().text;
    } else if (response.status().IsRetryable()) {
      // Transient outage (breaker open, deadline, overload): degrade to
      // the extractive answer rather than failing the round.
      outcome->used_fallback = true;
      outcome->failure = response.status();
      answer = ExtractiveAnswer(context, /*llm_down=*/true);
    } else {
      return response.status();
    }
  } else {
    // Plain formatted listing: direct engagement with query execution.
    answer = ExtractiveAnswer(context, /*llm_down=*/false);
  }
  builder->AddTurn(query_text, answer);
  return answer;
}

}  // namespace mqa
