#include "core/config_parser.h"

#include <cstdlib>

#include "common/string_util.h"

namespace mqa {

namespace {

Result<bool> ParseBool(const std::string& key, const std::string& value) {
  const std::string v = ToLower(value);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("bad boolean for " + key + ": " + value);
}

Result<uint64_t> ParseUint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer for " + key + ": " + value);
  }
  return static_cast<uint64_t>(v);
}

Result<float> ParseFloat(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const float v = std::strtof(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad float for " + key + ": " + value);
  }
  return v;
}

void EnsureNoiseSize(MqaConfig* config) {
  if (config->world.modality_noise.size() < 2) {
    config->world.modality_noise.resize(2, 0.1f);
  }
}

}  // namespace

Result<MqaConfig> ParseMqaConfig(const std::vector<std::string>& lines) {
  MqaConfig config;
  for (size_t lineno = 0; lineno < lines.size(); ++lineno) {
    const std::string line = Trim(lines[lineno]);
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno + 1) +
                                     ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("line " + std::to_string(lineno + 1) +
                                     ": empty key or value");
    }

    if (key == "enable_knowledge_base") {
      MQA_ASSIGN_OR_RETURN(config.enable_knowledge_base,
                           ParseBool(key, value));
    } else if (key == "corpus_size") {
      MQA_ASSIGN_OR_RETURN(config.corpus_size, ParseUint(key, value));
    } else if (key == "kb_name") {
      config.kb_name = value;
    } else if (key == "encoder") {
      config.encoder_preset = value;
    } else if (key == "embedding_dim") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.embedding_dim = static_cast<uint32_t>(v);
    } else if (key == "learn_weights") {
      MQA_ASSIGN_OR_RETURN(config.learn_weights, ParseBool(key, value));
    } else if (key == "training_triplets") {
      MQA_ASSIGN_OR_RETURN(config.num_training_triplets,
                           ParseUint(key, value));
    } else if (key == "index.algorithm") {
      config.index.algorithm = value;
    } else if (key == "index.max_degree") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.index.graph.max_degree = static_cast<uint32_t>(v);
      config.index.hnsw.m = static_cast<uint32_t>(std::max<uint64_t>(2, v / 2));
    } else if (key == "index.build_beam") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.index.graph.build_beam = static_cast<uint32_t>(v);
      config.index.hnsw.ef_construction = static_cast<uint32_t>(v);
    } else if (key == "index.alpha") {
      MQA_ASSIGN_OR_RETURN(config.index.graph.alpha, ParseFloat(key, value));
    } else if (key == "index.sketch_prefilter") {
      MQA_ASSIGN_OR_RETURN(config.index.sketch_prefilter,
                           ParseBool(key, value));
    } else if (key == "index.sketch_scale") {
      MQA_ASSIGN_OR_RETURN(config.index.sketch_scale, ParseFloat(key, value));
    } else if (key == "simd.level") {
      config.simd_level = value;
    } else if (key == "framework") {
      config.framework = value;
    } else if (key == "search.k") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.search.k = v;
    } else if (key == "search.beam_width") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.search.beam_width = v;
    } else if (key == "rewrite_vague_queries") {
      MQA_ASSIGN_OR_RETURN(config.rewrite_vague_queries,
                           ParseBool(key, value));
    } else if (key == "llm") {
      config.llm = value;
    } else if (key == "temperature") {
      MQA_ASSIGN_OR_RETURN(config.temperature, ParseFloat(key, value));
    } else if (key == "resilience.enable") {
      MQA_ASSIGN_OR_RETURN(config.resilience.enable, ParseBool(key, value));
    } else if (key == "resilience.llm_max_attempts") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.resilience.llm_max_attempts = static_cast<int>(v);
    } else if (key == "resilience.llm_backoff_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.resilience.llm_initial_backoff_ms = v;
    } else if (key == "resilience.llm_deadline_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.resilience.llm_overall_deadline_ms = v;
    } else if (key == "resilience.breaker_threshold") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.resilience.breaker_failure_threshold = static_cast<int>(v);
    } else if (key == "resilience.breaker_open_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.resilience.breaker_open_ms = v;
    } else if (key == "resilience.encoder_max_attempts") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.resilience.encoder_max_attempts = static_cast<int>(v);
    } else if (key == "resilience.io_error_budget") {
      MQA_ASSIGN_OR_RETURN(config.index.disk.io_error_budget,
                           ParseUint(key, value));
    } else if (key == "serving.num_workers") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.serving.num_workers = static_cast<size_t>(v);
    } else if (key == "serving.queue_capacity") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.serving.queue_capacity = static_cast<size_t>(v);
    } else if (key == "serving.default_deadline_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.serving.default_deadline_ms = v;
    } else if (key == "serving.enable_batching") {
      MQA_ASSIGN_OR_RETURN(config.serving.enable_batching,
                           ParseBool(key, value));
    } else if (key == "serving.max_batch") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.serving.max_batch = static_cast<size_t>(v);
    } else if (key == "serving.batch_flush_slack_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.serving.batch_flush_slack_ms = v;
    } else if (key == "serving.breaker_threshold") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.serving.breaker_failure_threshold = static_cast<int>(v);
    } else if (key == "serving.breaker_open_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.serving.breaker_open_ms = v;
    } else if (key == "shard.enable") {
      MQA_ASSIGN_OR_RETURN(config.shard.enable, ParseBool(key, value));
    } else if (key == "shard.num_shards") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.shard.num_shards = static_cast<size_t>(v);
    } else if (key == "shard.quorum") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.shard.quorum = static_cast<size_t>(v);
    } else if (key == "shard.partition") {
      config.shard.partition = value;
    } else if (key == "shard.hedge_percentile") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.shard.hedge_percentile = v;
    } else if (key == "shard.hedge_min_samples") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.shard.hedge_min_samples = static_cast<size_t>(v);
    } else if (key == "shard.deadline_fraction") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.shard.deadline_fraction = v;
    } else if (key == "shard.fanout_threads") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.shard.fanout_threads = static_cast<size_t>(v);
    } else if (key == "shard.breaker_threshold") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.shard.breaker_failure_threshold = static_cast<int>(v);
    } else if (key == "shard.breaker_open_ms") {
      MQA_ASSIGN_OR_RETURN(float v, ParseFloat(key, value));
      config.shard.breaker_open_ms = v;
    } else if (key == "observability.trace_turns") {
      MQA_ASSIGN_OR_RETURN(config.observability.trace_turns,
                           ParseBool(key, value));
    } else if (key == "observability.explain_turns") {
      MQA_ASSIGN_OR_RETURN(config.observability.explain_turns,
                           ParseBool(key, value));
    } else if (key == "observability.trace_build") {
      MQA_ASSIGN_OR_RETURN(config.observability.trace_build,
                           ParseBool(key, value));
    } else if (key == "seed") {
      MQA_ASSIGN_OR_RETURN(config.seed, ParseUint(key, value));
      config.world.seed = config.seed;
    } else if (key == "world.num_concepts") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.num_concepts = static_cast<uint32_t>(v);
    } else if (key == "world.latent_dim") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.latent_dim = static_cast<uint32_t>(v);
      if (config.world.raw_image_dim < v) {
        config.world.raw_image_dim = static_cast<uint32_t>(v) * 2;
      }
    } else if (key == "world.seed") {
      MQA_ASSIGN_OR_RETURN(config.world.seed, ParseUint(key, value));
    } else if (key == "world.raw_image_dim") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.raw_image_dim = static_cast<uint32_t>(v);
    } else if (key == "world.words_per_concept") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.words_per_concept = static_cast<uint32_t>(v);
    } else if (key == "world.adjectives_per_noun") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.adjectives_per_noun = static_cast<uint32_t>(v);
    } else if (key == "world.extra_modalities") {
      MQA_ASSIGN_OR_RETURN(uint64_t v, ParseUint(key, value));
      config.world.num_extra_modalities = static_cast<uint32_t>(v);
    } else if (key == "world.object_noise") {
      MQA_ASSIGN_OR_RETURN(config.world.object_noise, ParseFloat(key, value));
    } else if (key == "world.adjective_dropout") {
      MQA_ASSIGN_OR_RETURN(config.world.text_adjective_dropout,
                           ParseFloat(key, value));
    } else if (key == "world.image_noise") {
      EnsureNoiseSize(&config);
      MQA_ASSIGN_OR_RETURN(config.world.modality_noise[0],
                           ParseFloat(key, value));
    } else if (key == "world.text_noise") {
      EnsureNoiseSize(&config);
      MQA_ASSIGN_OR_RETURN(config.world.modality_noise[1],
                           ParseFloat(key, value));
    } else {
      return Status::InvalidArgument("unknown config key: " + key);
    }
  }
  return config;
}

Result<MqaConfig> ParseMqaConfigText(const std::string& text) {
  return ParseMqaConfig(Split(text, '\n'));
}

}  // namespace mqa
