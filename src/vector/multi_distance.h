#ifndef MQA_VECTOR_MULTI_DISTANCE_H_
#define MQA_VECTOR_MULTI_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vector/distance.h"
#include "vector/vector_types.h"

namespace mqa {

/// Counters for the computational-pruning ablation (MUST-E4). Accumulated by
/// the incremental multi-vector scan.
///
/// The counters are atomic so that concurrent searches sharing one
/// DistanceComputer (the serving path: many queries, one index) stay
/// TSan-clean; increments are relaxed, so cross-counter totals read during
/// a concurrent run are approximate and only exact once searches quiesce.
struct DistanceStats {
  std::atomic<uint64_t> full_computations{0};    ///< computed to completion
  std::atomic<uint64_t> pruned_computations{0};  ///< abandoned early
  std::atomic<uint64_t> dims_scanned{0};  ///< float components visited
  /// Subset of pruned_computations rejected by the bit-sketch prefilter
  /// before any float was touched (see vector/sketch.h).
  std::atomic<uint64_t> sketch_rejects{0};

  DistanceStats() = default;
  DistanceStats(const DistanceStats& other) { CopyFrom(other); }
  DistanceStats& operator=(const DistanceStats& other) {
    CopyFrom(other);
    return *this;
  }

  void Reset() {
    full_computations = 0;
    pruned_computations = 0;
    dims_scanned = 0;
    sketch_rejects = 0;
  }

  uint64_t TotalComputations() const {
    return full_computations + pruned_computations;
  }

 private:
  void CopyFrom(const DistanceStats& other) {
    full_computations.store(other.full_computations.load());
    pruned_computations.store(other.pruned_computations.load());
    dims_scanned.store(other.dims_scanned.load());
    sketch_rejects.store(other.sketch_rejects.load());
  }
};

/// Weighted multi-vector distance (the MUST similarity):
///
///   D(q, o) = sum_m w_m * d(q_m, o_m)
///
/// with d = squared L2 per modality. Because every term is nonnegative, the
/// running prefix sum is a lower bound on the final value, which enables
/// *incremental scanning*: modality blocks are accumulated in order and the
/// computation is abandoned as soon as the prefix exceeds a caller-supplied
/// bound (the current top-k worst distance during search).
class WeightedMultiDistance {
 public:
  /// `weights` must have one nonnegative entry per modality in `schema`.
  static Result<WeightedMultiDistance> Create(VectorSchema schema,
                                              std::vector<float> weights);

  /// Exact distance between two flattened multi-vectors (length
  /// schema.TotalDim() each).
  float Exact(const float* q, const float* o) const;

  /// Exact distances from `q` to `n` candidate rows laid out at `base`,
  /// `base + stride`, ... (a contiguous VectorStore/pivot-table scan).
  /// Row i's result lands in out[i]. Each row goes through the same Exact
  /// kernel — results are bitwise identical to n individual calls — while
  /// the next row is prefetched, so linear rerank scans hide memory
  /// latency behind the arithmetic.
  void ExactBatch(const float* q, const float* base, size_t stride, size_t n,
                  float* out) const;

  /// Distance with early abandonment at `bound`. Returns a value > bound
  /// (not necessarily exact) when abandoned. `stats` may be null.
  float Pruned(const float* q, const float* o, float bound,
               DistanceStats* stats) const;

  const VectorSchema& schema() const { return schema_; }
  const std::vector<float>& weights() const { return weights_; }

  /// Replaces the modality weights (e.g. after weight learning or a user
  /// override at query time). Size must match; values must be >= 0.
  Status SetWeights(std::vector<float> weights);

 private:
  WeightedMultiDistance(VectorSchema schema, std::vector<float> weights);

  /// Re-sorts scan_order_ by descending weight.
  void RecomputeScanOrder();

  VectorSchema schema_;
  std::vector<float> weights_;
  std::vector<size_t> offsets_;  // modality start offsets in the flat layout
  std::vector<size_t> scan_order_;  // modality indices, heaviest first
};

/// Flattens a MultiVector into one contiguous buffer in schema order.
/// Returns InvalidArgument if dimensions do not match the schema.
Result<Vector> FlattenMultiVector(const VectorSchema& schema,
                                  const MultiVector& mv);

/// Scales each modality block of a flattened vector by sqrt(w_m), in place.
/// After this transform, *plain* L2 on the concatenated vectors equals the
/// weighted multi-vector distance — the trick that lets MUST reuse a
/// single-vector navigation graph for multi-modal search.
Status ApplyWeightScaling(const VectorSchema& schema,
                          const std::vector<float>& weights, float* flat);

}  // namespace mqa

#endif  // MQA_VECTOR_MULTI_DISTANCE_H_
