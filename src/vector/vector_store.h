#ifndef MQA_VECTOR_VECTOR_STORE_H_
#define MQA_VECTOR_VECTOR_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/result.h"
#include "vector/multi_distance.h"
#include "vector/vector_types.h"

namespace mqa {

/// Row-major flat storage for N fixed-schema (multi-)vectors. Row i occupies
/// `schema.TotalDim()` consecutive floats. Ids are dense [0, size).
class VectorStore {
 public:
  explicit VectorStore(VectorSchema schema) : schema_(std::move(schema)) {}

  /// Appends a flattened vector; returns its id. The vector length must be
  /// schema().TotalDim().
  Result<uint32_t> Add(const Vector& flat);

  /// Appends a structured multi-vector (flattened internally).
  Result<uint32_t> AddMultiVector(const MultiVector& mv);

  /// Pointer to row `id`. Precondition: id < size().
  const float* data(uint32_t id) const {
    return flat_.data() + static_cast<size_t>(id) * row_dim();
  }

  /// Copies row `id` out as a Vector.
  Vector Row(uint32_t id) const {
    const float* p = data(id);
    return Vector(p, p + row_dim());
  }

  uint32_t size() const { return static_cast<uint32_t>(count_); }
  size_t row_dim() const { return schema_.TotalDim(); }
  const VectorSchema& schema() const { return schema_; }

  void Reserve(size_t n) { flat_.reserve(n * row_dim()); }

  /// Binary serialization (schema + rows).
  Status Save(std::ostream& out) const;
  static Result<VectorStore> Load(std::istream& in);

 private:
  VectorSchema schema_;
  std::vector<float> flat_;
  size_t count_ = 0;
};

/// Query-to-stored-vector distance abstraction used by all graph searches.
/// Implementations may prune with a bound and may accumulate statistics, so
/// the methods are non-const.
class DistanceComputer {
 public:
  virtual ~DistanceComputer() = default;

  /// Exact distance from query `q` (flattened, row_dim floats) to row `id`.
  virtual float Distance(const float* q, uint32_t id) = 0;

  /// Distance with an early-abandon bound. May return any value > bound
  /// when the true distance exceeds `bound`.
  virtual float DistanceWithBound(const float* q, uint32_t id, float bound) {
    (void)bound;
    return Distance(q, id);
  }

  /// Exact distance between two stored rows (used at build time).
  virtual float DistanceBetween(uint32_t a, uint32_t b) = 0;

  virtual size_t dim() const = 0;
  virtual uint32_t size() const = 0;
};

/// Single-vector distance over a store with a standard metric — the path
/// used by JE and by per-modality MR indexes.
class FlatDistanceComputer : public DistanceComputer {
 public:
  FlatDistanceComputer(const VectorStore* store, Metric metric)
      : store_(store), metric_(metric) {}

  float Distance(const float* q, uint32_t id) override {
    return ComputeDistance(metric_, q, store_->data(id), store_->row_dim());
  }
  float DistanceBetween(uint32_t a, uint32_t b) override {
    return ComputeDistance(metric_, store_->data(a), store_->data(b),
                           store_->row_dim());
  }
  size_t dim() const override { return store_->row_dim(); }
  uint32_t size() const override { return store_->size(); }

 private:
  const VectorStore* store_;
  Metric metric_;
};

/// Weighted multi-vector distance with incremental-scanning pruning — the
/// MUST path. Accumulates DistanceStats for the pruning ablation.
class MultiVectorDistanceComputer : public DistanceComputer {
 public:
  MultiVectorDistanceComputer(const VectorStore* store,
                              WeightedMultiDistance dist, bool enable_pruning)
      : store_(store), dist_(std::move(dist)), pruning_(enable_pruning) {}

  float Distance(const float* q, uint32_t id) override {
    float d = dist_.Exact(q, store_->data(id));
    ++stats_.full_computations;
    stats_.dims_scanned += store_->row_dim();
    return d;
  }

  float DistanceWithBound(const float* q, uint32_t id, float bound) override {
    if (!pruning_) return Distance(q, id);
    return dist_.Pruned(q, store_->data(id), bound, &stats_);
  }

  float DistanceBetween(uint32_t a, uint32_t b) override {
    return dist_.Exact(store_->data(a), store_->data(b));
  }

  size_t dim() const override { return store_->row_dim(); }
  uint32_t size() const override { return store_->size(); }

  const DistanceStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  const WeightedMultiDistance& weighted_distance() const { return dist_; }
  Status SetWeights(std::vector<float> w) {
    return dist_.SetWeights(std::move(w));
  }

 private:
  const VectorStore* store_;
  WeightedMultiDistance dist_;
  bool pruning_;
  DistanceStats stats_;
};

}  // namespace mqa

#endif  // MQA_VECTOR_VECTOR_STORE_H_
