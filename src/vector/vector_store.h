#ifndef MQA_VECTOR_VECTOR_STORE_H_
#define MQA_VECTOR_VECTOR_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "vector/multi_distance.h"
#include "vector/simd/simd.h"
#include "vector/sketch.h"
#include "vector/vector_types.h"

namespace mqa {

/// Row-major flat storage for N fixed-schema (multi-)vectors. Ids are dense
/// [0, size).
///
/// Layout: each object's per-modality segments are contiguous (one linear
/// stream per weighted multi-distance call), rows start 64-byte aligned, and
/// the in-memory stride is the logical row dimension rounded up to 16 floats
/// (one cache line) so SIMD kernels and prefetches never straddle rows. The
/// pad floats are zero and never enter any distance. The *serialized* format
/// is unchanged — Save/Load write and read logical rows — so snapshots from
/// the pre-padding layout load bit-identically (guarded by the layout
/// migration test).
class VectorStore {
 public:
  /// In-memory row stride granularity, in floats (64 bytes).
  static constexpr size_t kRowAlignFloats =
      kSimdAlignment / sizeof(float);

  explicit VectorStore(VectorSchema schema)
      : schema_(std::move(schema)), stride_(PaddedDim(schema_.TotalDim())) {}

  /// Appends a flattened vector; returns its id. The vector length must be
  /// schema().TotalDim().
  Result<uint32_t> Add(const Vector& flat);

  /// Appends a structured multi-vector (flattened internally).
  Result<uint32_t> AddMultiVector(const MultiVector& mv);

  /// Pointer to row `id` (64-byte aligned). Precondition: id < size().
  const float* data(uint32_t id) const {
    return flat_.data() + static_cast<size_t>(id) * stride_;
  }

  /// Copies row `id` out as a Vector (logical dims only, no padding).
  Vector Row(uint32_t id) const {
    const float* p = data(id);
    return Vector(p, p + row_dim());
  }

  uint32_t size() const { return static_cast<uint32_t>(count_); }
  size_t row_dim() const { return schema_.TotalDim(); }
  /// Floats between consecutive rows in memory (>= row_dim()).
  size_t row_stride() const { return stride_; }
  const VectorSchema& schema() const { return schema_; }

  void Reserve(size_t n) { flat_.reserve(n * stride_); }

  /// Binary serialization (schema + logical rows; padding is not written).
  Status Save(std::ostream& out) const;
  static Result<VectorStore> Load(std::istream& in);

 private:
  static size_t PaddedDim(size_t dim) {
    return (dim + kRowAlignFloats - 1) / kRowAlignFloats * kRowAlignFloats;
  }

  VectorSchema schema_;
  size_t stride_;
  AlignedFloatVector flat_;
  size_t count_ = 0;
};

/// Query-to-stored-vector distance abstraction used by all graph searches.
/// Implementations may prune with a bound and may accumulate statistics, so
/// the methods are non-const.
class DistanceComputer {
 public:
  virtual ~DistanceComputer() = default;

  /// Announces that subsequent Distance* calls on *this thread* use query
  /// `q`, letting the implementation precompute per-query state (the
  /// bit-sketch prefilter). Optional: every Distance* call is correct
  /// without it, just without the prefilter fast path. Thread-local in
  /// effect, so concurrent searches sharing one computer never observe each
  /// other's query state.
  virtual void BeginQuery(const float* q) { (void)q; }

  /// Exact distance from query `q` (flattened, row_dim floats) to row `id`.
  virtual float Distance(const float* q, uint32_t id) = 0;

  /// Distance with an early-abandon bound. May return any value > bound
  /// when the true distance exceeds `bound`.
  virtual float DistanceWithBound(const float* q, uint32_t id, float bound) {
    (void)bound;
    return Distance(q, id);
  }

  /// Exact distances from `q` to ids[0..n). out[i] corresponds to ids[i].
  /// Bitwise identical to n Distance() calls — the batch exists to overlap
  /// each row's memory fetch with the previous row's arithmetic.
  virtual void DistanceBatch(const float* q, const uint32_t* ids, size_t n,
                             float* out) {
    for (size_t i = 0; i < n; ++i) {
      if (i + 1 < n) Prefetch(ids[i + 1]);
      out[i] = Distance(q, ids[i]);
    }
  }

  /// Hints that row `id` will be scored soon.
  virtual void Prefetch(uint32_t id) { (void)id; }

  /// True when DistanceWithBound can actually return early (pruning or
  /// prefiltering); callers may pick exact batch paths when false.
  virtual bool PrunesWithBound() const { return false; }

  /// Exact distance between two stored rows (used at build time).
  virtual float DistanceBetween(uint32_t a, uint32_t b) = 0;

  virtual size_t dim() const = 0;
  virtual uint32_t size() const = 0;
};

/// Single-vector distance over a store with a standard metric — the path
/// used by JE and by per-modality MR indexes.
class FlatDistanceComputer : public DistanceComputer {
 public:
  FlatDistanceComputer(const VectorStore* store, Metric metric)
      : store_(store), metric_(metric) {}

  float Distance(const float* q, uint32_t id) override {
    return ComputeDistance(metric_, q, store_->data(id), store_->row_dim());
  }
  float DistanceBetween(uint32_t a, uint32_t b) override {
    return ComputeDistance(metric_, store_->data(a), store_->data(b),
                           store_->row_dim());
  }
  void Prefetch(uint32_t id) override {
    const char* row = reinterpret_cast<const char*>(store_->data(id));
    const size_t bytes = store_->row_dim() * sizeof(float);
    for (size_t b = 0; b < bytes; b += kSimdAlignment) PrefetchRead(row + b);
  }
  size_t dim() const override { return store_->row_dim(); }
  uint32_t size() const override { return store_->size(); }

 private:
  const VectorStore* store_;
  Metric metric_;
};

/// Weighted multi-vector distance with incremental-scanning pruning — the
/// MUST path. Accumulates DistanceStats for the pruning ablation.
///
/// When a BitSketchIndex is attached (SetSketches), DistanceWithBound first
/// compares popcount sketches: an object whose proven lower bound already
/// exceeds the bound is rejected without touching a single float. At the
/// default sketch_scale of 1 this rejects only objects the pruning bound
/// would reject anyway, so recall is provably unchanged (see
/// vector/sketch.h). The prefilter engages only after BeginQuery(q) was
/// called on the current thread with the same query pointer.
class MultiVectorDistanceComputer : public DistanceComputer {
 public:
  MultiVectorDistanceComputer(const VectorStore* store,
                              WeightedMultiDistance dist, bool enable_pruning)
      : store_(store), dist_(std::move(dist)), pruning_(enable_pruning) {}

  void BeginQuery(const float* q) override;

  float Distance(const float* q, uint32_t id) override {
    float d = dist_.Exact(q, store_->data(id));
    ++stats_.full_computations;
    stats_.dims_scanned += store_->row_dim();
    return d;
  }

  float DistanceWithBound(const float* q, uint32_t id, float bound) override;

  float DistanceBetween(uint32_t a, uint32_t b) override {
    return dist_.Exact(store_->data(a), store_->data(b));
  }

  void Prefetch(uint32_t id) override {
    const char* row = reinterpret_cast<const char*>(store_->data(id));
    const size_t bytes = store_->row_dim() * sizeof(float);
    for (size_t b = 0; b < bytes; b += kSimdAlignment) PrefetchRead(row + b);
  }

  bool PrunesWithBound() const override {
    return pruning_ || sketches_ != nullptr;
  }

  size_t dim() const override { return store_->row_dim(); }
  uint32_t size() const override { return store_->size(); }

  /// Attaches (or detaches, with nullptr) the prefilter sketches. Not
  /// owned; must outlive this computer or be detached first. `scale`
  /// multiplies the proven lower bound before the reject comparison: 1 is
  /// provably recall-neutral, > 1 trades recall for more rejects.
  void SetSketches(const BitSketchIndex* sketches, float scale = 1.0f) {
    sketches_ = sketches;
    sketch_scale_ = scale > 0.0f ? scale : 1.0f;
  }
  const BitSketchIndex* sketches() const { return sketches_; }

  const DistanceStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  const WeightedMultiDistance& weighted_distance() const { return dist_; }
  Status SetWeights(std::vector<float> w) {
    return dist_.SetWeights(std::move(w));
  }

 private:
  const VectorStore* store_;
  WeightedMultiDistance dist_;
  bool pruning_;
  const BitSketchIndex* sketches_ = nullptr;
  float sketch_scale_ = 1.0f;
  DistanceStats stats_;
};

}  // namespace mqa

#endif  // MQA_VECTOR_VECTOR_STORE_H_
