#ifndef MQA_VECTOR_SKETCH_H_
#define MQA_VECTOR_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vector/vector_types.h"

namespace mqa {

class VectorStore;

/// Per-object bit sketches for the popcount prefilter (the `letterBits`
/// idiom): one 64-bit word per modality holding the sign bits of up to 64
/// evenly sampled components. Before a full weighted distance is computed,
/// the query's words are XOR-popcount-compared against the object's — each
/// mismatched bit j proves the two vectors lie on opposite sides of zero at
/// sampled component c_j, hence contributes at least q[c_j]^2 to that
/// modality's squared L2. Summed with the modality weights this yields a
/// lower bound on the full weighted distance:
///
///   lb(q, o) = sum_m w_m * (min_j q[c_j]^2) * popcount(qw_m ^ ow_m)
///            <= D(q, o)
///
/// so rejecting exactly when lb > bound discards only objects the
/// incremental-scanning pruning bound would discard anyway — recall is
/// provably unchanged at the default setting (sketch_scale = 1).
///
/// Sketches are append-only alongside the store; ids beyond size() simply
/// skip the prefilter (fresh inserts are never filtered by a stale sketch).
/// Not internally synchronized: writers (ingest/compaction) must hold the
/// same exclusive lock they hold to mutate the store itself.
class BitSketchIndex {
 public:
  static constexpr size_t kBitsPerWord = 64;

  explicit BitSketchIndex(VectorSchema schema);

  /// Sketches one flattened row (schema().TotalDim() floats) and appends it
  /// as the next id.
  void Append(const float* row);

  /// Drops all sketches and re-sketches every row of `store` (compaction).
  void Rebuild(const VectorStore& store);

  /// Number of sketched objects.
  uint32_t size() const {
    return static_cast<uint32_t>(words_.size() / words_per_object());
  }

  /// The object's words, one per modality. Precondition: id < size().
  const uint64_t* words(uint32_t id) const {
    return words_.data() + static_cast<size_t>(id) * words_per_object();
  }

  size_t words_per_object() const { return schema_.num_modalities(); }
  const VectorSchema& schema() const { return schema_; }

  /// Component index of bit j for a modality of dimension `dim` (even
  /// sampling; the identity when dim <= 64).
  static size_t SampledIndex(size_t j, size_t dim) {
    return dim <= kBitsPerWord ? j : j * dim / kBitsPerWord;
  }

  /// Number of bits used for a modality of dimension `dim`.
  static size_t BitsFor(size_t dim) {
    return dim < kBitsPerWord ? dim : kBitsPerWord;
  }

  /// Sign-bit word of one modality segment: bit j is set iff x[c_j] > 0.
  static uint64_t SketchModality(const float* x, size_t dim);

 private:
  VectorSchema schema_;
  std::vector<size_t> offsets_;  // modality start offsets in the flat row
  std::vector<uint64_t> words_;  // size() * words_per_object(), row-major
};

/// Query-side state for the prefilter, recomputed per query (weights may
/// change between queries): the query's sketch words plus, per modality,
/// the guaranteed per-mismatched-bit contribution
/// `floor_m = w_m * min_j q[c_j]^2`.
struct QuerySketch {
  std::vector<uint64_t> words;
  std::vector<float> floors;

  /// Fills this sketch for flattened query `q` under `weights`.
  void Prepare(const BitSketchIndex& index, const float* q,
               const std::vector<float>& weights);

  /// The proven lower bound on the weighted distance to the object with
  /// sketch words `ow`.
  float LowerBound(const uint64_t* ow) const;
};

}  // namespace mqa

#endif  // MQA_VECTOR_SKETCH_H_
