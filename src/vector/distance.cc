#include "vector/distance.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "vector/simd/simd.h"

namespace mqa {

Metric MetricFromString(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "ip" || n == "innerproduct" || n == "inner_product") {
    return Metric::kInnerProduct;
  }
  if (n == "cosine" || n == "cos") return Metric::kCosine;
  return Metric::kL2;
}

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "l2";
}

float L2Sq(const float* a, const float* b, size_t dim) {
  // Dispatched to the active ISA tier (see vector/simd/); the scalar tier
  // keeps the historical four-accumulator loop bit-identically.
  return ActiveKernels().l2sq(a, b, dim);
}

float Dot(const float* a, const float* b, size_t dim) {
  return ActiveKernels().dot(a, b, dim);
}

float Norm(const float* a, size_t dim) { return std::sqrt(Dot(a, a, dim)); }

float CosineDistance(const float* a, const float* b, size_t dim) {
  const float na = Norm(a, dim);
  const float nb = Norm(b, dim);
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - Dot(a, b, dim) / (na * nb);
}

float ComputeDistance(Metric metric, const float* a, const float* b,
                      size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Sq(a, b, dim);
    case Metric::kInnerProduct:
      return -Dot(a, b, dim);
    case Metric::kCosine:
      return CosineDistance(a, b, dim);
  }
  return L2Sq(a, b, dim);
}

float L2SqEarlyAbandon(const float* a, const float* b, size_t dim,
                       float bound, size_t* dims_scanned) {
  constexpr size_t kBlock = 16;
  const DistanceKernels& kernels = ActiveKernels();
  float sum = 0.0f;
  size_t i = 0;
  while (i < dim) {
    const size_t end = std::min(dim, i + kBlock);
    sum += kernels.l2sq(a + i, b + i, end - i);
    if (dims_scanned != nullptr) *dims_scanned += end - i;
    i = end;
    if (sum > bound) return sum;
  }
  return sum;
}

void NormalizeVector(float* v, size_t dim) {
  const float n = Norm(v, dim);
  if (n == 0.0f) return;
  const float inv = 1.0f / n;
  for (size_t i = 0; i < dim; ++i) v[i] *= inv;
}

void NormalizeVector(Vector* v) { NormalizeVector(v->data(), v->size()); }

}  // namespace mqa
