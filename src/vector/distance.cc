#include "vector/distance.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mqa {

Metric MetricFromString(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "ip" || n == "innerproduct" || n == "inner_product") {
    return Metric::kInnerProduct;
  }
  if (n == "cosine" || n == "cos") return Metric::kCosine;
  return Metric::kL2;
}

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "l2";
}

float L2Sq(const float* a, const float* b, size_t dim) {
  // Four accumulators so the compiler can vectorize without reassociation
  // concerns; the tail is handled scalar.
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float sum = s0 + s1 + s2 + s3;
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float Dot(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float sum = s0 + s1 + s2 + s3;
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

float Norm(const float* a, size_t dim) { return std::sqrt(Dot(a, a, dim)); }

float CosineDistance(const float* a, const float* b, size_t dim) {
  const float na = Norm(a, dim);
  const float nb = Norm(b, dim);
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - Dot(a, b, dim) / (na * nb);
}

float ComputeDistance(Metric metric, const float* a, const float* b,
                      size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Sq(a, b, dim);
    case Metric::kInnerProduct:
      return -Dot(a, b, dim);
    case Metric::kCosine:
      return CosineDistance(a, b, dim);
  }
  return L2Sq(a, b, dim);
}

float L2SqEarlyAbandon(const float* a, const float* b, size_t dim,
                       float bound, size_t* dims_scanned) {
  constexpr size_t kBlock = 16;
  float sum = 0.0f;
  size_t i = 0;
  while (i < dim) {
    const size_t begin = i;
    const size_t end = std::min(dim, i + kBlock);
    for (; i < end; ++i) {
      const float d = a[i] - b[i];
      sum += d * d;
    }
    if (dims_scanned != nullptr) *dims_scanned += end - begin;
    if (sum > bound) return sum;
  }
  return sum;
}

void NormalizeVector(float* v, size_t dim) {
  const float n = Norm(v, dim);
  if (n == 0.0f) return;
  const float inv = 1.0f / n;
  for (size_t i = 0; i < dim; ++i) v[i] *= inv;
}

void NormalizeVector(Vector* v) { NormalizeVector(v->data(), v->size()); }

}  // namespace mqa
