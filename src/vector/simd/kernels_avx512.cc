// AVX-512F kernels: 16-wide FMA with masked-load tails (no scalar tail
// loop, so remainder dims 1..15 stay in vector registers). Compiled with
// -mavx512f on x86_64 builds only and reached solely through the dispatch
// table after a CPUID check; this is one of the two translation units
// allowed to include <immintrin.h> (lint rule `raw-intrinsics`).

#include "vector/simd/kernels.h"

#if defined(MQA_SIMD_X86)
#include <immintrin.h>
#endif

namespace mqa {
namespace simd_internal {

#if defined(MQA_SIMD_X86)

namespace {

float L2SqAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, a + i),
                                   _mm512_maskz_loadu_ps(tail, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float DotAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < dim) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(tail, a + i),
                           _mm512_maskz_loadu_ps(tail, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

/// Weighted multi-segment L2 in one pass: per-segment vector sums are
/// folded into a single weighted accumulator register (one fmadd with the
/// broadcast weight per segment) and reduced horizontally exactly once.
/// Masked tails keep remainder dims 1..15 in vector registers.
float WL2SqAvx512(const float* q, const float* o, const size_t* offsets,
                  const uint32_t* dims, const float* weights, size_t num_m) {
  __m512 acc = _mm512_setzero_ps();
  for (size_t m = 0; m < num_m; ++m) {
    const float* a = q + offsets[m];
    const float* b = o + offsets[m];
    const size_t dim = dims[m];
    __m512 seg = _mm512_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= dim; i += 16) {
      const __m512 d =
          _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
      seg = _mm512_fmadd_ps(d, d, seg);
    }
    if (i < dim) {
      const __mmask16 tail = static_cast<__mmask16>((1u << (dim - i)) - 1u);
      const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, a + i),
                                     _mm512_maskz_loadu_ps(tail, b + i));
      seg = _mm512_fmadd_ps(d, d, seg);
    }
    acc = _mm512_fmadd_ps(_mm512_set1_ps(weights[m]), seg, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

}  // namespace

const DistanceKernels* Avx512KernelsOrNull() {
  static const DistanceKernels kTable = {&L2SqAvx512, &DotAvx512,
                                         &WL2SqAvx512};
  return &kTable;
}

#else  // !MQA_SIMD_X86

const DistanceKernels* Avx512KernelsOrNull() { return nullptr; }

#endif  // MQA_SIMD_X86

}  // namespace simd_internal
}  // namespace mqa
