#include "vector/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "vector/simd/kernels.h"

namespace mqa {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

SimdLevel ProbeCpu() {
#if defined(MQA_SIMD_X86)
  // __builtin_cpu_supports also verifies OS XSAVE state, so a "yes" here
  // means the instructions are actually executable, not merely decoded.
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

// The active dispatch table. Resolved once on first use (or explicitly via
// SetSimdLevel); afterwards every distance call is one relaxed atomic load
// plus one indirect call.
std::atomic<const DistanceKernels*> g_active_kernels{nullptr};
std::atomic<int> g_active_level{static_cast<int>(SimdLevel::kScalar)};

const DistanceKernels* ResolveActive() {
  const char* env = std::getenv("MQA_SIMD_LEVEL");
  std::string note;
  const SimdLevel level =
      ResolveSimdLevel(env == nullptr ? "" : env, DetectedSimdLevel(), &note);
  if (!note.empty()) {
    MQA_LOG(Warning) << "simd: " << note;
  }
  const DistanceKernels* table = &KernelsFor(level);
  // First resolver wins; a concurrent SetSimdLevel keeps its own choice.
  const DistanceKernels* expected = nullptr;
  if (g_active_kernels.compare_exchange_strong(expected, table,
                                               std::memory_order_acq_rel)) {
    g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
    MQA_LOG(Info) << "simd: dispatch resolved to " << SimdLevelName(level)
                   << " (cpu supports up to "
                   << SimdLevelName(DetectedSimdLevel()) << ")";
    return table;
  }
  return expected;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Result<SimdLevel> SimdLevelFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "scalar") return SimdLevel::kScalar;
  if (lower == "avx2") return SimdLevel::kAvx2;
  if (lower == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument("unknown SIMD level: '" + name +
                                 "' (expected scalar|avx2|avx512)");
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel kDetected = ProbeCpu();
  return kDetected;
}

bool CpuSupports(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectedSimdLevel());
}

SimdLevel ResolveSimdLevel(const std::string& requested, SimdLevel detected,
                           std::string* note) {
  const std::string lower = ToLower(requested);
  if (lower.empty() || lower == "auto") return detected;
  Result<SimdLevel> parsed = SimdLevelFromString(lower);
  if (!parsed.ok()) {
    if (note != nullptr) {
      *note = parsed.status().message() + "; using detected level " +
              SimdLevelName(detected);
    }
    return detected;
  }
  if (static_cast<int>(*parsed) > static_cast<int>(detected)) {
    if (note != nullptr) {
      *note = std::string("requested SIMD level '") + SimdLevelName(*parsed) +
              "' not supported by this CPU; clamped to '" +
              SimdLevelName(detected) + "'";
    }
    return detected;
  }
  return *parsed;
}

SimdLevel ActiveSimdLevel() {
  if (g_active_kernels.load(std::memory_order_acquire) == nullptr) {
    ResolveActive();
  }
  return static_cast<SimdLevel>(
      g_active_level.load(std::memory_order_relaxed));
}

Status SetSimdLevel(SimdLevel level) {
  if (!CpuSupports(level)) {
    return Status::InvalidArgument(
        std::string("SIMD level '") + SimdLevelName(level) +
        "' not supported by this CPU (max '" +
        SimdLevelName(DetectedSimdLevel()) + "')");
  }
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active_kernels.store(&KernelsFor(level), std::memory_order_release);
  return Status::OK();
}

const DistanceKernels& KernelsFor(SimdLevel level) {
  // Tiers compiled out of this build fall back tier by tier, so the table
  // returned is always executable on the current binary.
  if (level == SimdLevel::kAvx512) {
    const DistanceKernels* t = simd_internal::Avx512KernelsOrNull();
    if (t != nullptr) return *t;
    level = SimdLevel::kAvx2;
  }
  if (level == SimdLevel::kAvx2) {
    const DistanceKernels* t = simd_internal::Avx2KernelsOrNull();
    if (t != nullptr) return *t;
  }
  return simd_internal::ScalarKernels();
}

const DistanceKernels& ActiveKernels() {
  const DistanceKernels* table =
      g_active_kernels.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  return *ResolveActive();
}

}  // namespace mqa
