// AVX2+FMA kernels: two 8-wide FMA accumulator chains plus a scalar tail.
// This translation unit is the only place (besides kernels_avx512.cc)
// allowed to include <immintrin.h> (lint rule `raw-intrinsics`), and it is
// compiled with -mavx2 -mfma on x86_64 builds only; the functions are
// reached solely through the dispatch table after a CPUID check.

#include "vector/simd/kernels.h"

#if defined(MQA_SIMD_X86)
#include <immintrin.h>
#endif

namespace mqa {
namespace simd_internal {

#if defined(MQA_SIMD_X86)

namespace {

float HorizontalSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

float L2SqAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float sum = HorizontalSum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = HorizontalSum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

/// Weighted multi-segment L2 in one pass: the weighted accumulator stays
/// in a vector register across segments (one fmadd per segment with the
/// broadcast weight) and is reduced horizontally exactly once. Scalar
/// tails of each segment accumulate separately, weighted at the end.
float WL2SqAvx2(const float* q, const float* o, const size_t* offsets,
                const uint32_t* dims, const float* weights, size_t num_m) {
  __m256 acc = _mm256_setzero_ps();
  float tail_sum = 0.0f;
  for (size_t m = 0; m < num_m; ++m) {
    const float* a = q + offsets[m];
    const float* b = o + offsets[m];
    const size_t dim = dims[m];
    __m256 seg = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256 d =
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
      seg = _mm256_fmadd_ps(d, d, seg);
    }
    acc = _mm256_fmadd_ps(_mm256_set1_ps(weights[m]), seg, acc);
    float seg_tail = 0.0f;
    for (; i < dim; ++i) {
      const float d = a[i] - b[i];
      seg_tail += d * d;
    }
    tail_sum += weights[m] * seg_tail;
  }
  return HorizontalSum256(acc) + tail_sum;
}

}  // namespace

const DistanceKernels* Avx2KernelsOrNull() {
  static const DistanceKernels kTable = {&L2SqAvx2, &DotAvx2, &WL2SqAvx2};
  return &kTable;
}

#else  // !MQA_SIMD_X86

const DistanceKernels* Avx2KernelsOrNull() { return nullptr; }

#endif  // MQA_SIMD_X86

}  // namespace simd_internal
}  // namespace mqa
