// Portable scalar kernels — the dispatch fallback and the reference the
// parity fuzz suite compares every SIMD tier against. The loop structure
// (four independent accumulators, scalar tail) is kept bit-identical to
// the pre-dispatch implementation in vector/distance.cc so scalar-level
// runs reproduce historical results exactly.

#include "vector/simd/kernels.h"

namespace mqa {
namespace simd_internal {

namespace {

float L2SqScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  float sum = s0 + s1 + s2 + s3;
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Weighted multi-segment L2. Per-segment L2SqScalar keeps the summation
/// order bit-identical to the historical per-modality loop in
/// WeightedMultiDistance::Exact, so scalar-level runs are unchanged.
float WL2SqScalar(const float* q, const float* o, const size_t* offsets,
                  const uint32_t* dims, const float* weights, size_t num_m) {
  float sum = 0.0f;
  for (size_t m = 0; m < num_m; ++m) {
    sum += weights[m] * L2SqScalar(q + offsets[m], o + offsets[m], dims[m]);
  }
  return sum;
}

float DotScalar(const float* a, const float* b, size_t dim) {
  float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float sum = s0 + s1 + s2 + s3;
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

const DistanceKernels& ScalarKernels() {
  static const DistanceKernels kTable = {&L2SqScalar, &DotScalar,
                                         &WL2SqScalar};
  return kTable;
}

}  // namespace simd_internal
}  // namespace mqa
