#ifndef MQA_VECTOR_SIMD_SIMD_H_
#define MQA_VECTOR_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace mqa {

/// Instruction-set tiers of the distance kernels. Exactly one tier is
/// *active* per process; it is resolved once, at first kernel use, from
/// the `MQA_SIMD_LEVEL` environment variable (values: "scalar", "avx2",
/// "avx512", or "auto") clamped to what CPUID reports, and can be
/// overridden programmatically (config `simd.level`, tests) via
/// SetSimdLevel. Every tier computes the same mathematical function; only
/// the floating-point summation order differs (tiers agree to a few ulps,
/// gated by the kernel-parity fuzz suite).
enum class SimdLevel {
  kScalar = 0,  ///< portable 4-accumulator loops (always available)
  kAvx2 = 1,    ///< 8-wide FMA (requires AVX2 + FMA)
  kAvx512 = 2,  ///< 16-wide FMA with masked tails (requires AVX-512F)
};

const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" / "avx2" / "avx512" (case-insensitive).
Result<SimdLevel> SimdLevelFromString(const std::string& name);

/// Highest tier this CPU (and OS) can execute. Probed once via CPUID;
/// always at least kScalar.
SimdLevel DetectedSimdLevel();
bool CpuSupports(SimdLevel level);

/// Pure resolution rule for the startup dispatch decision, unit-testable
/// without touching process state: `requested` is the raw override string
/// ("" or "auto" = use `detected`); a requested tier the CPU lacks, or an
/// unparseable name, clamps to `detected` and explains itself in `*note`
/// (untouched when the request is honored as-is). `note` may be null.
SimdLevel ResolveSimdLevel(const std::string& requested, SimdLevel detected,
                           std::string* note);

/// The tier the dispatched kernels currently execute at.
SimdLevel ActiveSimdLevel();

/// Overrides the active tier (config/tests). Fails with InvalidArgument
/// when the CPU cannot execute `level`. Not meant to race with in-flight
/// searches: callers switch tiers at startup or between test cases.
Status SetSimdLevel(SimdLevel level);

/// The dispatch table: one function pointer per primitive kernel. Selected
/// once per process; every hot-path distance goes through exactly one
/// indirect call (no per-call CPUID, no per-element branching).
struct DistanceKernels {
  float (*l2sq)(const float* a, const float* b, size_t dim);
  float (*dot)(const float* a, const float* b, size_t dim);
  /// Fused weighted multi-segment L2: sum_m weights[m] *
  /// L2Sq(q+offsets[m], o+offsets[m], dims[m]) in one pass with a single
  /// horizontal reduction (the SIMD tiers keep the weighted accumulator in
  /// vector registers across segments). The workhorse of the weighted
  /// multi-distance Exact/rerank paths.
  float (*wl2sq)(const float* q, const float* o, const size_t* offsets,
                 const uint32_t* dims, const float* weights, size_t num_m);
};

/// Table for an explicit tier; tiers compiled out of this build (non-x86
/// hosts) fall back to the next lower available tier. Used by the parity
/// tests to compare tiers side by side regardless of the active one.
const DistanceKernels& KernelsFor(SimdLevel level);

/// Table of the active tier (resolves the tier on first use).
const DistanceKernels& ActiveKernels();

/// Portable read-prefetch hint for upcoming rows in adjacency/rerank
/// scans. A plain hint — safe on any address, compiles to nothing where
/// unsupported — so callers outside src/vector/simd/ never need raw
/// intrinsics (see the `raw-intrinsics` lint rule).
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

}  // namespace mqa

#endif  // MQA_VECTOR_SIMD_SIMD_H_
