#ifndef MQA_VECTOR_SIMD_KERNELS_H_
#define MQA_VECTOR_SIMD_KERNELS_H_

#include "vector/simd/simd.h"

namespace mqa {
namespace simd_internal {

/// Per-tier kernel tables. The scalar table always exists; the AVX tables
/// are null when their translation unit was compiled without x86 support
/// (the dispatcher then falls back tier by tier). Each AVX translation
/// unit is compiled with its own -m flags (see src/vector/CMakeLists.txt)
/// and contains nothing but kernels, so no vectorized code can leak into
/// paths that run on unverified CPUs.
const DistanceKernels& ScalarKernels();
const DistanceKernels* Avx2KernelsOrNull();
const DistanceKernels* Avx512KernelsOrNull();

}  // namespace simd_internal
}  // namespace mqa

#endif  // MQA_VECTOR_SIMD_KERNELS_H_
