#include "vector/vector_store.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace mqa {

namespace {

constexpr uint32_t kStoreMagic = 0x4d514156;  // "MQAV"

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

/// Per-thread prefilter state: which computer/query the cached QuerySketch
/// belongs to. Keyed by both so (a) concurrent searches sharing one
/// computer each see only their own query's sketch, and (b) a computer
/// whose BeginQuery was never called on this thread finds a mismatch and
/// simply skips the prefilter.
struct ThreadQuerySketch {
  const void* owner = nullptr;
  const float* query = nullptr;
  QuerySketch sketch;
};

thread_local ThreadQuerySketch t_query_sketch;

}  // namespace

Result<uint32_t> VectorStore::Add(const Vector& flat) {
  if (flat.size() != row_dim()) {
    return Status::InvalidArgument("vector length does not match schema");
  }
  flat_.resize((count_ + 1) * stride_, 0.0f);
  std::memcpy(flat_.data() + count_ * stride_, flat.data(),
              flat.size() * sizeof(float));
  return static_cast<uint32_t>(count_++);
}

Result<uint32_t> VectorStore::AddMultiVector(const MultiVector& mv) {
  MQA_ASSIGN_OR_RETURN(Vector flat, FlattenMultiVector(schema_, mv));
  return Add(flat);
}

Status VectorStore::Save(std::ostream& out) const {
  WritePod(out, kStoreMagic);
  const uint32_t num_m = static_cast<uint32_t>(schema_.num_modalities());
  WritePod(out, num_m);
  for (uint32_t d : schema_.dims) WritePod(out, d);
  const uint64_t n = count_;
  WritePod(out, n);
  // Logical rows only: the on-disk format has no padding, so snapshots are
  // identical to those written by the unpadded layout.
  for (size_t i = 0; i < count_; ++i) {
    out.write(reinterpret_cast<const char*>(flat_.data() + i * stride_),
              static_cast<std::streamsize>(row_dim() * sizeof(float)));
  }
  if (!out) return Status::IoError("failed to write vector store");
  return Status::OK();
}

Result<VectorStore> VectorStore::Load(std::istream& in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kStoreMagic) {
    return Status::IoError("bad vector store header");
  }
  uint32_t num_m = 0;
  if (!ReadPod(in, &num_m) || num_m == 0 || num_m > 64) {
    return Status::IoError("bad modality count");
  }
  VectorSchema schema;
  schema.dims.resize(num_m);
  for (auto& d : schema.dims) {
    if (!ReadPod(in, &d)) return Status::IoError("truncated schema");
  }
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated row count");
  VectorStore store(schema);
  store.flat_.resize(n * store.stride_, 0.0f);
  for (uint64_t i = 0; i < n; ++i) {
    in.read(reinterpret_cast<char*>(store.flat_.data() + i * store.stride_),
            static_cast<std::streamsize>(store.row_dim() * sizeof(float)));
    if (!in) return Status::IoError("truncated vector data");
  }
  store.count_ = n;
  return store;
}

void MultiVectorDistanceComputer::BeginQuery(const float* q) {
  if (sketches_ == nullptr || q == nullptr) return;
  t_query_sketch.owner = this;
  t_query_sketch.query = q;
  t_query_sketch.sketch.Prepare(*sketches_, q, dist_.weights());
}

float MultiVectorDistanceComputer::DistanceWithBound(const float* q,
                                                     uint32_t id,
                                                     float bound) {
  if (sketches_ != nullptr && t_query_sketch.owner == this &&
      t_query_sketch.query == q && id < sketches_->size()) {
    const float lb = t_query_sketch.sketch.LowerBound(sketches_->words(id));
    if (lb * sketch_scale_ > bound) {
      ++stats_.pruned_computations;
      ++stats_.sketch_rejects;
      // The contract requires a value > bound; lb itself qualifies at the
      // provable scale of 1 but may not when scale > 1.
      return lb > bound
                 ? lb
                 : std::nextafter(bound, std::numeric_limits<float>::max());
    }
  }
  if (!pruning_) return Distance(q, id);
  return dist_.Pruned(q, store_->data(id), bound, &stats_);
}

}  // namespace mqa
