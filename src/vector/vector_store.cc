#include "vector/vector_store.h"

#include <istream>
#include <ostream>

namespace mqa {

namespace {

constexpr uint32_t kStoreMagic = 0x4d514156;  // "MQAV"

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Result<uint32_t> VectorStore::Add(const Vector& flat) {
  if (flat.size() != row_dim()) {
    return Status::InvalidArgument("vector length does not match schema");
  }
  flat_.insert(flat_.end(), flat.begin(), flat.end());
  return static_cast<uint32_t>(count_++);
}

Result<uint32_t> VectorStore::AddMultiVector(const MultiVector& mv) {
  MQA_ASSIGN_OR_RETURN(Vector flat, FlattenMultiVector(schema_, mv));
  return Add(flat);
}

Status VectorStore::Save(std::ostream& out) const {
  WritePod(out, kStoreMagic);
  const uint32_t num_m = static_cast<uint32_t>(schema_.num_modalities());
  WritePod(out, num_m);
  for (uint32_t d : schema_.dims) WritePod(out, d);
  const uint64_t n = count_;
  WritePod(out, n);
  out.write(reinterpret_cast<const char*>(flat_.data()),
            static_cast<std::streamsize>(flat_.size() * sizeof(float)));
  if (!out) return Status::IoError("failed to write vector store");
  return Status::OK();
}

Result<VectorStore> VectorStore::Load(std::istream& in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kStoreMagic) {
    return Status::IoError("bad vector store header");
  }
  uint32_t num_m = 0;
  if (!ReadPod(in, &num_m) || num_m == 0 || num_m > 64) {
    return Status::IoError("bad modality count");
  }
  VectorSchema schema;
  schema.dims.resize(num_m);
  for (auto& d : schema.dims) {
    if (!ReadPod(in, &d)) return Status::IoError("truncated schema");
  }
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated row count");
  VectorStore store(schema);
  store.flat_.resize(n * store.row_dim());
  in.read(reinterpret_cast<char*>(store.flat_.data()),
          static_cast<std::streamsize>(store.flat_.size() * sizeof(float)));
  if (!in) return Status::IoError("truncated vector data");
  store.count_ = n;
  return store;
}

}  // namespace mqa
