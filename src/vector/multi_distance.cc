#include "vector/multi_distance.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "vector/simd/simd.h"

namespace mqa {

Result<WeightedMultiDistance> WeightedMultiDistance::Create(
    VectorSchema schema, std::vector<float> weights) {
  if (schema.num_modalities() == 0) {
    return Status::InvalidArgument("schema has no modalities");
  }
  if (weights.size() != schema.num_modalities()) {
    return Status::InvalidArgument("weights size does not match schema");
  }
  for (float w : weights) {
    if (w < 0.0f || !std::isfinite(w)) {
      return Status::InvalidArgument("modality weights must be finite and >= 0");
    }
  }
  return WeightedMultiDistance(std::move(schema), std::move(weights));
}

WeightedMultiDistance::WeightedMultiDistance(VectorSchema schema,
                                             std::vector<float> weights)
    : schema_(std::move(schema)), weights_(std::move(weights)) {
  offsets_.resize(schema_.num_modalities());
  size_t off = 0;
  for (size_t m = 0; m < schema_.num_modalities(); ++m) {
    offsets_[m] = off;
    off += schema_.dims[m];
  }
  RecomputeScanOrder();
}

float WeightedMultiDistance::Exact(const float* q, const float* o) const {
  // One fused dispatch call: the SIMD tiers carry the weighted accumulator
  // across modality segments in vector registers, with a single horizontal
  // reduction; the scalar tier reproduces the historical per-modality loop
  // bit for bit.
  return ActiveKernels().wl2sq(q, o, offsets_.data(), schema_.dims.data(),
                               weights_.data(), schema_.num_modalities());
}

void WeightedMultiDistance::ExactBatch(const float* q, const float* base,
                                       size_t stride, size_t n,
                                       float* out) const {
  for (size_t i = 0; i < n; ++i) {
    const float* row = base + i * stride;
    if (i + 1 < n) {
      // Pull the next row toward L1 while this one is being reduced. One
      // hint per cache line; rows are stride floats apart.
      const float* next = row + stride;
      for (size_t b = 0; b < stride * sizeof(float); b += 64) {
        PrefetchRead(reinterpret_cast<const char*>(next) + b);
      }
    }
    out[i] = Exact(q, row);
  }
}

float WeightedMultiDistance::Pruned(const float* q, const float* o,
                                    float bound, DistanceStats* stats) const {
  // Modalities are scanned heaviest-weight first (see RecomputeScanOrder):
  // the largest contributions accumulate earliest, so the running prefix
  // crosses the abandon bound as soon as possible.
  float sum = 0.0f;
  for (size_t i = 0; i < scan_order_.size(); ++i) {
    const size_t m = scan_order_[i];
    const float w = weights_[m];
    if (w == 0.0f) continue;
    const size_t dim = schema_.dims[m];
    sum += w * L2Sq(q + offsets_[m], o + offsets_[m], dim);
    if (stats != nullptr) stats->dims_scanned += dim;
    if (sum > bound) {
      if (stats != nullptr) {
        // Only count a prune when work was actually skipped.
        if (i + 1 < scan_order_.size()) {
          ++stats->pruned_computations;
        } else {
          ++stats->full_computations;
        }
      }
      return sum;
    }
  }
  if (stats != nullptr) ++stats->full_computations;
  return sum;
}

void WeightedMultiDistance::RecomputeScanOrder() {
  scan_order_.resize(schema_.num_modalities());
  for (size_t m = 0; m < scan_order_.size(); ++m) scan_order_[m] = m;
  std::stable_sort(scan_order_.begin(), scan_order_.end(),
                   [this](size_t a, size_t b) {
                     return weights_[a] > weights_[b];
                   });
}

Status WeightedMultiDistance::SetWeights(std::vector<float> weights) {
  if (weights.size() != weights_.size()) {
    return Status::InvalidArgument("weights size does not match schema");
  }
  for (float w : weights) {
    if (w < 0.0f || !std::isfinite(w)) {
      return Status::InvalidArgument("modality weights must be finite and >= 0");
    }
  }
  weights_ = std::move(weights);
  RecomputeScanOrder();
  return Status::OK();
}

Result<Vector> FlattenMultiVector(const VectorSchema& schema,
                                  const MultiVector& mv) {
  if (mv.num_modalities() != schema.num_modalities()) {
    return Status::InvalidArgument("multi-vector modality count mismatch");
  }
  Vector flat(schema.TotalDim());
  size_t off = 0;
  for (size_t m = 0; m < schema.num_modalities(); ++m) {
    if (mv.parts[m].size() != schema.dims[m]) {
      return Status::InvalidArgument("modality dimension mismatch");
    }
    std::memcpy(flat.data() + off, mv.parts[m].data(),
                schema.dims[m] * sizeof(float));
    off += schema.dims[m];
  }
  return flat;
}

Status ApplyWeightScaling(const VectorSchema& schema,
                          const std::vector<float>& weights, float* flat) {
  if (weights.size() != schema.num_modalities()) {
    return Status::InvalidArgument("weights size does not match schema");
  }
  size_t off = 0;
  for (size_t m = 0; m < schema.num_modalities(); ++m) {
    if (weights[m] < 0.0f) {
      return Status::InvalidArgument("modality weights must be >= 0");
    }
    const float s = std::sqrt(weights[m]);
    for (size_t i = 0; i < schema.dims[m]; ++i) flat[off + i] *= s;
    off += schema.dims[m];
  }
  return Status::OK();
}

}  // namespace mqa
