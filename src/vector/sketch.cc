#include "vector/sketch.h"

#include "common/check.h"
#include "vector/vector_store.h"

#if defined(__GNUC__) || defined(__clang__)
#define MQA_POPCOUNT64(x) static_cast<int>(__builtin_popcountll(x))
#else
namespace {
int FallbackPopcount64(uint64_t x) {
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
}
}  // namespace
#define MQA_POPCOUNT64(x) FallbackPopcount64(x)
#endif

namespace mqa {

BitSketchIndex::BitSketchIndex(VectorSchema schema)
    : schema_(std::move(schema)) {
  offsets_.resize(schema_.num_modalities());
  size_t off = 0;
  for (size_t m = 0; m < schema_.num_modalities(); ++m) {
    offsets_[m] = off;
    off += schema_.dims[m];
  }
}

uint64_t BitSketchIndex::SketchModality(const float* x, size_t dim) {
  uint64_t w = 0;
  const size_t bits = BitsFor(dim);
  for (size_t j = 0; j < bits; ++j) {
    if (x[SampledIndex(j, dim)] > 0.0f) w |= uint64_t{1} << j;
  }
  return w;
}

void BitSketchIndex::Append(const float* row) {
  for (size_t m = 0; m < schema_.num_modalities(); ++m) {
    words_.push_back(SketchModality(row + offsets_[m], schema_.dims[m]));
  }
}

void BitSketchIndex::Rebuild(const VectorStore& store) {
  MQA_CHECK(store.schema().dims == schema_.dims)
      << ": sketch/store schema mismatch";
  words_.clear();
  words_.reserve(static_cast<size_t>(store.size()) * words_per_object());
  for (uint32_t id = 0; id < store.size(); ++id) {
    Append(store.data(id));
  }
}

void QuerySketch::Prepare(const BitSketchIndex& index, const float* q,
                          const std::vector<float>& weights) {
  const VectorSchema& schema = index.schema();
  const size_t num_m = schema.num_modalities();
  words.resize(num_m);
  floors.resize(num_m);
  size_t off = 0;
  for (size_t m = 0; m < num_m; ++m) {
    const size_t dim = schema.dims[m];
    words[m] = BitSketchIndex::SketchModality(q + off, dim);
    // The guaranteed contribution of one mismatched bit: the smallest
    // squared sampled query component. Any sampled component near zero
    // makes this modality's floor vanish — the prefilter then degrades
    // gracefully to "never rejects" rather than ever overestimating.
    float min_sq = -1.0f;
    const size_t bits = BitSketchIndex::BitsFor(dim);
    for (size_t j = 0; j < bits; ++j) {
      const float c = q[off + BitSketchIndex::SampledIndex(j, dim)];
      const float sq = c * c;
      if (min_sq < 0.0f || sq < min_sq) min_sq = sq;
    }
    const float w = m < weights.size() ? weights[m] : 1.0f;
    floors[m] = min_sq > 0.0f ? w * min_sq : 0.0f;
    off += dim;
  }
}

float QuerySketch::LowerBound(const uint64_t* ow) const {
  float lb = 0.0f;
  for (size_t m = 0; m < words.size(); ++m) {
    if (floors[m] == 0.0f) continue;
    lb += floors[m] * static_cast<float>(MQA_POPCOUNT64(words[m] ^ ow[m]));
  }
  return lb;
}

}  // namespace mqa
