#ifndef MQA_VECTOR_DISTANCE_H_
#define MQA_VECTOR_DISTANCE_H_

#include <cstddef>
#include <string>

#include "vector/vector_types.h"

namespace mqa {

/// Distance metrics. All are "smaller is closer"; similarities (inner
/// product, cosine) are mapped so that graph search can treat every metric
/// uniformly.
enum class Metric {
  kL2,            ///< squared Euclidean distance
  kInnerProduct,  ///< negative dot product
  kCosine,        ///< 1 - cosine similarity (in [0, 2])
};

/// Parses "l2" / "ip" / "cosine" (case-insensitive); defaults to kL2 on
/// unknown input.
Metric MetricFromString(const std::string& name);
const char* MetricToString(Metric metric);

/// Squared Euclidean distance between a and b (both of length dim).
float L2Sq(const float* a, const float* b, size_t dim);

/// Dot product.
float Dot(const float* a, const float* b, size_t dim);

/// Euclidean norm.
float Norm(const float* a, size_t dim);

/// 1 - cosine similarity. Returns 1 when either vector is all-zero.
float CosineDistance(const float* a, const float* b, size_t dim);

/// Dispatches on `metric`.
float ComputeDistance(Metric metric, const float* a, const float* b,
                      size_t dim);

/// Squared L2 with early abandonment: processes in blocks and returns a
/// value > `bound` as soon as the running sum exceeds `bound` (the exact
/// value is then unspecified but still > bound). Used by the incremental
/// multi-vector scan. `*dims_scanned` (optional) is incremented by the
/// number of components actually visited.
float L2SqEarlyAbandon(const float* a, const float* b, size_t dim,
                       float bound, size_t* dims_scanned);

/// In-place L2 normalization; zero vectors are left unchanged.
void NormalizeVector(float* v, size_t dim);
void NormalizeVector(Vector* v);

}  // namespace mqa

#endif  // MQA_VECTOR_DISTANCE_H_
