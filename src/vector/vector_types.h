#ifndef MQA_VECTOR_VECTOR_TYPES_H_
#define MQA_VECTOR_VECTOR_TYPES_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace mqa {

/// A dense float vector. MQA keeps vectors as plain contiguous floats; all
/// kernels take raw pointers + dimension so they work on flat storage too.
using Vector = std::vector<float>;

/// One vector per modality for a single object or query — the paper's
/// "multi-vector representation". Modality order is fixed system-wide by the
/// schema (e.g. 0 = image, 1 = text).
struct MultiVector {
  std::vector<Vector> parts;

  size_t num_modalities() const { return parts.size(); }

  /// Total dimensionality across modalities.
  size_t TotalDim() const {
    size_t d = 0;
    for (const auto& p : parts) d += p.size();
    return d;
  }
};

/// Per-modality dimensions of a multi-vector collection.
struct VectorSchema {
  std::vector<uint32_t> dims;

  size_t num_modalities() const { return dims.size(); }
  size_t TotalDim() const {
    return std::accumulate(dims.begin(), dims.end(), size_t{0});
  }

  /// Offset of modality m inside a flattened (concatenated) vector.
  size_t OffsetOf(size_t m) const {
    size_t off = 0;
    for (size_t i = 0; i < m; ++i) off += dims[i];
    return off;
  }

  bool operator==(const VectorSchema&) const = default;
};

}  // namespace mqa

#endif  // MQA_VECTOR_VECTOR_TYPES_H_
