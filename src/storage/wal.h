#ifndef MQA_STORAGE_WAL_H_
#define MQA_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mqa {

/// What one WAL record describes. Payloads are opaque here (the durable
/// system serializes objects / ids into them); the WAL only guarantees
/// that acknowledged records survive a crash byte-exact and in order.
enum class WalRecordType : uint8_t {
  kInsert = 1,  ///< payload: a serialized Object (see knowledge_base.h)
  kRemove = 2,  ///< payload: the deleted object id (8 bytes little-endian)
};

struct WalRecord {
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::string payload;
};

/// What ReadWal recovered from a log file. A torn tail (a frame cut short
/// by a crash mid-append, or one failing its CRC) is not an error: the
/// records before it are valid, and `valid_bytes` is where a writer must
/// truncate before appending again.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  ///< prefix covered by intact frames
  uint64_t torn_bytes = 0;   ///< trailing bytes discarded as torn
  bool torn_tail = false;
  uint64_t last_seq = 0;  ///< seq of the last intact record (0 = none)
};

/// Parses a WAL file. NotFound when the file does not exist (an empty
/// result, not a failure, for bootstrap paths that check first).
Result<WalReadResult> ReadWal(const std::string& path);

struct WalWriterOptions {
  /// Group-commit width: Append fsyncs after this many unsynced records.
  /// 1 (default) = every record is durable when Append returns; larger
  /// values batch records between fsyncs (callers ack only after Sync).
  size_t sync_every = 1;
  /// Lower bound on the next sequence number: Open continues from
  /// max(first_seq, last scanned seq + 1). Checkpointing truncates the
  /// log file, so after a restart the scan alone would restart at 1; the
  /// durable system passes its checkpoint seq + 1 to keep sequence
  /// numbers monotone across the system's whole lifetime.
  uint64_t first_seq = 1;
};

/// Append-only writer over one log file. CRC-framed records carry
/// monotonically increasing sequence numbers so replay after a checkpoint
/// is idempotent. Opening an existing file scans it, truncates any torn
/// tail, and continues the sequence.
///
/// Failure model: after a failed append, torn write or failed fsync the
/// writer is *broken* — the file tail state is unknown, so further appends
/// are refused (kFailedPrecondition) until the log is reopened (recovery
/// truncates to the last intact frame). Fault points: `wal/append` fails
/// before any byte is written; `wal/torn_write` (arm with
/// FaultSpec::partial_fraction) persists a prefix of the frame then fails;
/// `wal/fsync` fails the durability barrier after the bytes are staged.
///
/// Not thread-safe (the durable system serializes mutations).
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, const WalWriterOptions& options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and returns its sequence number. The record is
  /// durable once `last_synced_seq() >= seq` (immediately with
  /// sync_every == 1, after the group fsync otherwise).
  Result<uint64_t> Append(WalRecordType type, std::string_view payload);

  /// Durability barrier: fsyncs all appended records.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint made its records
  /// redundant). Sequence numbers keep increasing across truncation.
  Status Truncate();

  uint64_t next_seq() const { return next_seq_; }
  uint64_t last_appended_seq() const { return next_seq_ - 1; }
  uint64_t last_synced_seq() const { return last_synced_seq_; }
  bool broken() const { return broken_; }

  /// Test hook simulating a crash: bytes appended but never fsynced are
  /// discarded (a real crash may or may not keep them; tests take the
  /// conservative branch so recovery is deterministic). The writer is
  /// broken afterwards — reopen to continue.
  Status CrashDiscardUnsynced();

 private:
  WalWriter(std::string path, int fd, uint64_t start_seq,
            uint64_t valid_bytes, WalWriterOptions options)
      : path_(std::move(path)),
        fd_(fd),
        options_(options),
        next_seq_(start_seq),
        last_synced_seq_(start_seq - 1),
        synced_bytes_(valid_bytes),
        appended_bytes_(valid_bytes) {}

  std::string path_;
  int fd_ = -1;
  WalWriterOptions options_;
  uint64_t next_seq_ = 1;
  uint64_t last_synced_seq_ = 0;
  uint64_t synced_bytes_ = 0;    ///< file prefix known durable
  uint64_t appended_bytes_ = 0;  ///< file size including unsynced tail
  size_t unsynced_records_ = 0;
  bool broken_ = false;
};

}  // namespace mqa

#endif  // MQA_STORAGE_WAL_H_
