#include "storage/word_lists.h"

namespace mqa {

namespace {

constexpr const char* kNouns[] = {
    "cheese",  "clouds",   "coat",    "dress",   "sofa",    "lamp",
    "teapot",  "guitar",   "bridge",  "castle",  "garden",  "forest",
    "river",   "mountain", "beach",   "desert",  "scarf",   "boots",
    "hat",     "vase",     "mirror",  "carpet",  "curtain", "table",
    "chair",   "bicycle",  "kite",    "lantern", "bowl",    "basket",
    "jacket",  "sweater",  "painting","statue",  "fountain","tower",
    "cabin",   "meadow",   "orchard", "harbor",  "canyon",  "glacier",
    "island",  "valley",   "pond",    "waterfall","mug",    "clock",
    "pillow",  "blanket",  "candle",  "bookshelf","fence",  "gate",
    "roof",    "window",   "door",    "staircase","balcony", "chimney",
};

constexpr const char* kAdjectives[] = {
    "moldy",    "foggy",    "floral",   "striped",  "wooden",  "rustic",
    "glossy",   "velvet",   "faded",    "bright",   "ancient", "modern",
    "misty",    "snowy",    "sunny",    "stormy",   "knitted", "leather",
    "ceramic",  "marble",   "golden",   "silver",   "crimson", "azure",
    "emerald",  "ivory",    "charcoal", "amber",    "woven",   "polished",
    "weathered","ornate",   "minimal",  "checkered","dotted",  "embroidered",
    "frosted",  "lacquered","braided",  "quilted",
};

constexpr const char* kFillers[] = {
    "really", "quite", "very", "lovely", "nice", "wonderful", "simple",
    "classic", "everyday", "typical", "plain", "common", "ordinary",
};

}  // namespace

const char* const* BuiltinNouns(size_t* count) {
  *count = sizeof(kNouns) / sizeof(kNouns[0]);
  return kNouns;
}

const char* const* BuiltinAdjectives(size_t* count) {
  *count = sizeof(kAdjectives) / sizeof(kAdjectives[0]);
  return kAdjectives;
}

const char* const* BuiltinFillers(size_t* count) {
  *count = sizeof(kFillers) / sizeof(kFillers[0]);
  return kFillers;
}

}  // namespace mqa
