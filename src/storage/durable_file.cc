#include "storage/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/fault.h"

namespace mqa {

namespace {

Status IoErrorFromErrno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

/// write(2) until done or error (short writes happen on signals).
Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorFromErrno("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoErrorFromErrno("open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoErrorFromErrno("fsync", path);
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Injected crash mid-save: optionally leave a torn .tmp behind (it is
  // never renamed, so the previous good file survives), then fail.
  double partial = -1.0;
  const Status injected =
      FaultInjector::Global().CheckPartial("snapshot/write", &partial);
  const std::string tmp = path + ".tmp";
  if (!injected.ok()) {
    if (partial >= 0.0) {
      const size_t torn =
          static_cast<size_t>(partial * static_cast<double>(contents.size()));
      const int fd =
          ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        // Best effort: the crash being modeled would not report errors.
        (void)WriteAll(fd, contents.data(), torn, tmp);
        ::close(fd);
      }
    }
    return injected;
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoErrorFromErrno("open", tmp);
  Status st = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (st.ok() && ::fsync(fd) != 0) st = IoErrorFromErrno("fsync", tmp);
  ::close(fd);
  if (!st.ok()) {
    (void)::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_st = IoErrorFromErrno("rename", path);
    (void)::unlink(tmp.c_str());
    return rename_st;
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? "." : parent.string());
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& producer) {
  std::ostringstream buffer(std::ios::binary);
  MQA_RETURN_NOT_OK(producer(buffer));
  const std::string contents = std::move(buffer).str();
  return WriteFileAtomic(path, contents);
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return IoErrorFromErrno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoErrorFromErrno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace mqa
