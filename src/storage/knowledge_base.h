#ifndef MQA_STORAGE_KNOWLEDGE_BASE_H_
#define MQA_STORAGE_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/tombstones.h"
#include "storage/object.h"

namespace mqa {

/// The multi-modal knowledge base: a collection of objects with a fixed
/// modality schema and dense ids [0, size). This is the paper's "Data
/// Preprocessing" target representation — e.g. a movie's film, poster and
/// synopsis stored as one object with multiple modalities.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(ModalitySchema schema, std::string name = "kb")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  /// Ingests an object. Its id is assigned (= current size) and returned.
  /// The object's modality slots must match the schema.
  Result<uint64_t> Ingest(Object object);

  /// Schema check alone, without ingesting — lets a durability layer
  /// reject a bad object *before* logging it, so the WAL never records
  /// an operation that replay would then fail to apply.
  Status ValidateObject(const Object& object) const;

  /// Tombstones `id`. The slot stays allocated (ids are dense and shared
  /// with the vector store and graph index) until compaction rewrites
  /// everything; Get refuses deleted ids from here on. NotFound for an
  /// out-of-range id, FailedPrecondition for a double delete.
  Status Remove(uint64_t id);

  bool IsDeleted(uint64_t id) const {
    return deleted_.IsDeleted(static_cast<uint32_t>(id));
  }
  uint64_t num_deleted() const { return deleted_.count(); }
  uint64_t live_size() const { return objects_.size() - deleted_.count(); }
  double GarbageRatio() const {
    return deleted_.GarbageRatio(objects_.size());
  }

  /// Fills `remap` (old id -> new dense id, kTombstonedId for deleted)
  /// and returns the live count. The same remap drives vector-store and
  /// graph compaction so all three stay id-aligned.
  uint32_t BuildRemap(std::vector<uint32_t>* remap) const {
    return deleted_.BuildRemap(objects_.size(), remap);
  }

  /// A new KnowledgeBase holding only live objects, re-assigned dense ids
  /// per `remap` (as produced by BuildRemap).
  KnowledgeBase CompactLive(const std::vector<uint32_t>& remap,
                            uint32_t live_count) const;

  /// Object lookup. Precondition enforced: id < size() and not deleted.
  Result<const Object*> Get(uint64_t id) const;

  const Object& at(uint64_t id) const { return objects_[id]; }

  uint64_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }
  const ModalitySchema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  const std::vector<Object>& objects() const { return objects_; }

  /// Binary (de)serialization of schema + objects. Save emits the v2
  /// format (with the tombstone list); Load accepts v1 files too.
  Status Save(std::ostream& out) const;
  static Result<KnowledgeBase> Load(std::istream& in);

 private:
  ModalitySchema schema_;
  std::string name_;
  std::vector<Object> objects_;
  TombstoneSet deleted_;
};

/// Schema-independent object payload codec for WAL records: concept id,
/// latent and modality payloads, but *not* the id — replay re-assigns
/// dense ids, which is what makes insert records position-independent.
void SerializeObject(const Object& object, std::string* out);
Result<Object> DeserializeObject(std::string_view bytes);

}  // namespace mqa

#endif  // MQA_STORAGE_KNOWLEDGE_BASE_H_
