#ifndef MQA_STORAGE_KNOWLEDGE_BASE_H_
#define MQA_STORAGE_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/object.h"

namespace mqa {

/// The multi-modal knowledge base: a collection of objects with a fixed
/// modality schema and dense ids [0, size). This is the paper's "Data
/// Preprocessing" target representation — e.g. a movie's film, poster and
/// synopsis stored as one object with multiple modalities.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(ModalitySchema schema, std::string name = "kb")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  /// Ingests an object. Its id is assigned (= current size) and returned.
  /// The object's modality slots must match the schema.
  Result<uint64_t> Ingest(Object object);

  /// Object lookup. Precondition enforced: id < size().
  Result<const Object*> Get(uint64_t id) const;

  const Object& at(uint64_t id) const { return objects_[id]; }

  uint64_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }
  const ModalitySchema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  const std::vector<Object>& objects() const { return objects_; }

  /// Binary (de)serialization of schema + objects.
  Status Save(std::ostream& out) const;
  static Result<KnowledgeBase> Load(std::istream& in);

 private:
  ModalitySchema schema_;
  std::string name_;
  std::vector<Object> objects_;
};

}  // namespace mqa

#endif  // MQA_STORAGE_KNOWLEDGE_BASE_H_
