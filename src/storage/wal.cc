#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "storage/durable_file.h"

namespace mqa {

namespace {

// Frame: magic u32 | type u8 | seq u64 | payload_len u32 | crc u32 | payload.
// The CRC covers type, seq, payload_len and the payload — everything the
// magic does not already gate — so a bit flip anywhere in a record is
// detected, not just a short tail.
constexpr uint32_t kWalMagic = 0x4d51574c;  // "MQWL"
constexpr size_t kHeaderBytes = 4 + 1 + 8 + 4 + 4;

Status IoErrorFromErrno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

uint32_t FrameCrc(uint8_t type, uint64_t seq, uint32_t payload_len,
                  std::string_view payload) {
  uint32_t crc = Crc32(&type, sizeof(type));
  crc = Crc32(&seq, sizeof(seq), crc);
  crc = Crc32(&payload_len, sizeof(payload_len), crc);
  return Crc32(payload.data(), payload.size(), crc);
}

std::string EncodeFrame(WalRecordType type, uint64_t seq,
                        std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendPod(&frame, kWalMagic);
  AppendPod(&frame, static_cast<uint8_t>(type));
  AppendPod(&frame, seq);
  AppendPod(&frame, static_cast<uint32_t>(payload.size()));
  AppendPod(&frame, FrameCrc(static_cast<uint8_t>(type), seq,
                             static_cast<uint32_t>(payload.size()), payload));
  frame.append(payload.data(), payload.size());
  return frame;
}

Status WriteAll(int fd, const char* data, size_t len,
                const std::string& path) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorFromErrno("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<WalReadResult> ReadWal(const std::string& path) {
  MQA_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  WalReadResult out;
  size_t off = 0;
  while (bytes.size() - off >= kHeaderBytes) {
    const char* p = bytes.data() + off;
    if (ReadPod<uint32_t>(p) != kWalMagic) break;
    const uint8_t type = ReadPod<uint8_t>(p + 4);
    const uint64_t seq = ReadPod<uint64_t>(p + 5);
    const uint32_t payload_len = ReadPod<uint32_t>(p + 13);
    const uint32_t crc = ReadPod<uint32_t>(p + 17);
    if (bytes.size() - off - kHeaderBytes < payload_len) break;
    const std::string_view payload(p + kHeaderBytes, payload_len);
    if (FrameCrc(type, seq, payload_len, payload) != crc) break;
    if (type != static_cast<uint8_t>(WalRecordType::kInsert) &&
        type != static_cast<uint8_t>(WalRecordType::kRemove)) {
      break;
    }
    WalRecord record;
    record.seq = seq;
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(payload.data(), payload.size());
    out.records.push_back(std::move(record));
    out.last_seq = seq;
    off += kHeaderBytes + payload_len;
  }
  out.valid_bytes = off;
  out.torn_bytes = bytes.size() - off;
  out.torn_tail = out.torn_bytes > 0;
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const WalWriterOptions& options) {
  if (options.sync_every == 0) {
    return Status::InvalidArgument("WalWriterOptions::sync_every must be > 0");
  }
  uint64_t start_seq = options.first_seq > 0 ? options.first_seq : 1;
  uint64_t valid_bytes = 0;
  Result<WalReadResult> scanned = ReadWal(path);
  if (scanned.ok()) {
    start_seq = std::max(start_seq, scanned->last_seq + 1);
    valid_bytes = scanned->valid_bytes;
  } else if (scanned.status().code() != StatusCode::kNotFound) {
    return scanned.status();
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return IoErrorFromErrno("open", path);
  // Recovery contract: a torn tail from a crashed append is cut off so
  // the next frame never lands after garbage bytes.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    const Status st = IoErrorFromErrno("truncate", path);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, start_seq, valid_bytes, options));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WalWriter::Append(WalRecordType type,
                                   std::string_view payload) {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL writer is broken after a failed write; reopen the log");
  }
  // Fail-before-write: nothing reached the file, the writer stays usable.
  MQA_RETURN_NOT_OK(FaultInjector::Global().Check("wal/append"));

  const uint64_t seq = next_seq_;
  const std::string frame = EncodeFrame(type, seq, payload);

  // Torn write: persist only a prefix of the frame, then fail. The tail
  // is garbage on disk until recovery truncates it, so the writer is
  // broken from here on.
  double partial = -1.0;
  const Status torn =
      FaultInjector::Global().CheckPartial("wal/torn_write", &partial);
  if (!torn.ok()) {
    broken_ = true;
    if (partial >= 0.0) {
      const size_t torn_len =
          static_cast<size_t>(partial * static_cast<double>(frame.size()));
      // Best effort — the crash being modeled would not report errors.
      (void)WriteAll(fd_, frame.data(), torn_len, path_);
      appended_bytes_ += torn_len;
    }
    return torn;
  }

  const Status written = WriteAll(fd_, frame.data(), frame.size(), path_);
  if (!written.ok()) {
    broken_ = true;
    return written;
  }
  appended_bytes_ += frame.size();
  next_seq_ = seq + 1;
  ++unsynced_records_;
  if (unsynced_records_ >= options_.sync_every) MQA_RETURN_NOT_OK(Sync());
  return seq;
}

Status WalWriter::Sync() {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL writer is broken after a failed write; reopen the log");
  }
  if (unsynced_records_ == 0) return Status::OK();
  const Status injected = FaultInjector::Global().Check("wal/fsync");
  if (!injected.ok()) {
    // The bytes may or may not be on disk — unknowable, so fail closed.
    broken_ = true;
    return injected;
  }
  if (::fsync(fd_) != 0) {
    broken_ = true;
    return IoErrorFromErrno("fsync", path_);
  }
  synced_bytes_ = appended_bytes_;
  last_synced_seq_ = next_seq_ - 1;
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Truncate() {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL writer is broken after a failed write; reopen the log");
  }
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    broken_ = true;
    return IoErrorFromErrno("truncate", path_);
  }
  if (::fsync(fd_) != 0) {
    broken_ = true;
    return IoErrorFromErrno("fsync", path_);
  }
  appended_bytes_ = 0;
  synced_bytes_ = 0;
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::CrashDiscardUnsynced() {
  MQA_CHECK_GE(appended_bytes_, synced_bytes_);
  if (::ftruncate(fd_, static_cast<off_t>(synced_bytes_)) != 0) {
    return IoErrorFromErrno("truncate", path_);
  }
  broken_ = true;
  return Status::OK();
}

}  // namespace mqa
