#ifndef MQA_STORAGE_DURABLE_FILE_H_
#define MQA_STORAGE_DURABLE_FILE_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mqa {

/// Atomic, durable file replacement: writes `contents` to `<path>.tmp`,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory. A
/// crash at any point leaves either the previous file intact or the new
/// one complete — never a truncated or interleaved mix. This is the only
/// sanctioned way to write snapshot artifacts (see the `durable-write`
/// lint rule); the WAL appends through WalWriter instead.
///
/// Fault point `snapshot/write` is consulted per call; a torn-write spec
/// (FaultSpec::partial_fraction) leaves a partial `.tmp` behind without
/// renaming — exactly the crash-mid-save state recovery must survive.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// WriteFileAtomic over a producer callback: the producer serializes into
/// a memory stream, and the buffered bytes are written atomically. Lets
/// Save(std::ostream&)-style serializers persist durably without knowing
/// about temp files.
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& producer);

/// Reads a whole file. NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace mqa

#endif  // MQA_STORAGE_DURABLE_FILE_H_
