#include "storage/world.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/string_util.h"
#include "storage/word_lists.h"
#include "common/topk.h"
#include "vector/distance.h"

namespace mqa {

namespace {

// Word pools for human-readable concept names (shared with the simulated
// LLM). Exhausting a pool falls back to synthetic names ("noun61"), so any
// num_concepts is supported.
void NormalizeInPlace(Vector* v) { NormalizeVector(v); }

Vector RandomUnit(size_t dim, Rng* rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  NormalizeVector(&v);
  return v;
}

// Deterministic pseudo-latent for out-of-vocabulary words: the same word
// always maps to the same small vector, acting as benign noise.
Vector HashWordVector(const std::string& word, size_t dim, float scale) {
  Rng rng(std::hash<std::string>{}(word) ^ 0x9e3779b97f4a7c15ULL);
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian()) * scale;
  return v;
}

// Solves inv(A) for a small dense matrix via Gauss-Jordan with partial
// pivoting. A is n x n row-major. Returns false if singular.
bool InvertMatrix(std::vector<double>* a_inout, size_t n) {
  std::vector<double>& a = *a_inout;
  std::vector<double> inv(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) inv[i * n + i] = 1.0;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a[pivot * n + c], a[col * n + c]);
        std::swap(inv[pivot * n + c], inv[col * n + c]);
      }
    }
    const double d = a[col * n + col];
    for (size_t c = 0; c < n; ++c) {
      a[col * n + c] /= d;
      inv[col * n + c] /= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r * n + col];
      if (f == 0.0) continue;
      for (size_t c = 0; c < n; ++c) {
        a[r * n + c] -= f * a[col * n + c];
        inv[r * n + c] -= f * inv[col * n + c];
      }
    }
  }
  a = std::move(inv);
  return true;
}

}  // namespace

Result<World> World::Create(const WorldConfig& config) {
  if (config.num_concepts == 0) {
    return Status::InvalidArgument("num_concepts must be > 0");
  }
  if (config.latent_dim < 4) {
    return Status::InvalidArgument("latent_dim must be >= 4");
  }
  if (config.raw_image_dim < config.latent_dim) {
    return Status::InvalidArgument(
        "raw_image_dim must be >= latent_dim for invertible rendering");
  }
  if (config.adjectives_per_noun == 0) {
    return Status::InvalidArgument("adjectives_per_noun must be > 0");
  }

  World world;
  world.config_ = config;
  world.noun_dim_ = config.latent_dim / 2;
  Rng rng(config.seed);

  const uint32_t apn = config.adjectives_per_noun;
  const uint32_t num_nouns = (config.num_concepts + apn - 1) / apn;
  const uint32_t latent_dim = config.latent_dim;
  const uint32_t noun_dim = world.noun_dim_;
  const uint32_t adj_dim = latent_dim - noun_dim;

  // Noun directions (noun subspace) and names.
  world.noun_words_.reserve(num_nouns);
  world.noun_vectors_.reserve(num_nouns);
  for (uint32_t j = 0; j < num_nouns; ++j) {
    size_t num_noun_words = 0;
    const char* const* nouns = BuiltinNouns(&num_noun_words);
    world.noun_words_.push_back(j < num_noun_words
                                    ? nouns[j]
                                    : "noun" + std::to_string(j));
    world.noun_vectors_.push_back(RandomUnit(noun_dim, &rng));
  }

  // Adjective directions; pool large enough that every noun can draw `apn`
  // distinct adjectives.
  const uint32_t num_adjs = std::max<uint32_t>(apn * 2, 16);
  world.adjective_words_.reserve(num_adjs);
  world.adjective_vectors_.reserve(num_adjs);
  for (uint32_t i = 0; i < num_adjs; ++i) {
    size_t num_adj_words = 0;
    const char* const* adjectives = BuiltinAdjectives(&num_adj_words);
    world.adjective_words_.push_back(i < num_adj_words
                                         ? adjectives[i]
                                         : "style" + std::to_string(i));
    world.adjective_vectors_.push_back(RandomUnit(adj_dim, &rng));
  }

  // Concepts: noun j paired with `apn` adjectives drawn per noun.
  world.noun_to_concepts_.resize(num_nouns);
  world.concepts_.reserve(config.num_concepts);
  world.prototypes_.reserve(config.num_concepts);
  for (uint32_t c = 0; c < config.num_concepts; ++c) {
    const uint32_t noun_id = c / apn;
    // A deterministic shuffled adjective assignment per noun.
    Rng adj_rng(config.seed ^ (0xabcdef1234ULL + noun_id));
    std::vector<uint32_t> adj_perm = adj_rng.Permutation(num_adjs);
    const uint32_t adjective_id = adj_perm[c % apn];

    ConceptInfo info;
    info.noun_id = noun_id;
    info.adjective_id = adjective_id;
    for (uint32_t w = 0; w < config.words_per_concept; ++w) {
      info.descriptor_words.push_back("d" + std::to_string(c) + "x" +
                                      std::to_string(w));
    }
    world.noun_to_concepts_[noun_id].push_back(c);

    // Prototype: noun direction in the first block, adjective direction in
    // the second; unit overall.
    Vector proto(latent_dim, 0.0f);
    for (uint32_t d = 0; d < noun_dim; ++d) {
      proto[d] = world.noun_vectors_[noun_id][d];
    }
    for (uint32_t d = 0; d < adj_dim; ++d) {
      proto[noun_dim + d] = world.adjective_vectors_[adjective_id][d];
    }
    NormalizeInPlace(&proto);
    world.prototypes_.push_back(std::move(proto));
    world.concepts_.push_back(std::move(info));
  }

  // Vocabulary latents. A noun word carries only noun-subspace signal, an
  // adjective word only adjective-subspace signal; descriptor words sit near
  // their concept's prototype.
  for (uint32_t j = 0; j < num_nouns; ++j) {
    Vector v(latent_dim, 0.0f);
    for (uint32_t d = 0; d < noun_dim; ++d) v[d] = world.noun_vectors_[j][d];
    world.vocab_[world.noun_words_[j]] = std::move(v);
  }
  for (uint32_t i = 0; i < num_adjs; ++i) {
    Vector v(latent_dim, 0.0f);
    for (uint32_t d = 0; d < adj_dim; ++d) {
      v[noun_dim + d] = world.adjective_vectors_[i][d];
    }
    world.vocab_[world.adjective_words_[i]] = std::move(v);
  }
  for (uint32_t c = 0; c < config.num_concepts; ++c) {
    for (const std::string& w : world.concepts_[c].descriptor_words) {
      Vector v = world.prototypes_[c];
      for (auto& x : v) x += 0.25f * static_cast<float>(rng.Gaussian());
      NormalizeInPlace(&v);
      world.vocab_[w] = std::move(v);
    }
  }

  // Rendering models: one for the image slot plus one per extra modality.
  const size_t num_feature_modalities = 1 + config.num_extra_modalities;
  world.render_.resize(num_feature_modalities);
  for (size_t fm = 0; fm < num_feature_modalities; ++fm) {
    RenderModel& model = world.render_[fm];
    model.raw_dim = config.raw_image_dim;
    const size_t rows = model.raw_dim;
    const size_t cols = latent_dim;
    model.forward.resize(rows * cols);
    const float scale = 1.0f / std::sqrt(static_cast<float>(cols));
    for (auto& x : model.forward) {
      x = static_cast<float>(rng.Gaussian()) * scale;
    }
    // Least-squares inverse: (M^T M)^-1 M^T, computed in double.
    std::vector<double> mtm(cols * cols, 0.0);
    for (size_t i = 0; i < cols; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        double s = 0.0;
        for (size_t r = 0; r < rows; ++r) {
          s += static_cast<double>(model.forward[r * cols + i]) *
               static_cast<double>(model.forward[r * cols + j]);
        }
        mtm[i * cols + j] = s;
      }
    }
    if (!InvertMatrix(&mtm, cols)) {
      return Status::Internal("rendering matrix is singular");
    }
    model.inverse.resize(cols * rows);
    for (size_t i = 0; i < cols; ++i) {
      for (size_t r = 0; r < rows; ++r) {
        double s = 0.0;
        for (size_t j = 0; j < cols; ++j) {
          s += mtm[i * cols + j] *
               static_cast<double>(model.forward[r * cols + j]);
        }
        model.inverse[i * rows + r] = static_cast<float>(s);
      }
    }
  }

  return world;
}

ModalitySchema World::Schema() const {
  ModalitySchema schema;
  schema.types.push_back(ModalityType::kImage);
  schema.types.push_back(ModalityType::kText);
  for (uint32_t m = 0; m < config_.num_extra_modalities; ++m) {
    schema.types.push_back(ModalityType::kAudio);
  }
  return schema;
}

std::string World::ConceptName(uint32_t concept_id) const {
  const ConceptInfo& c = concepts_[concept_id];
  return adjective_words_[c.adjective_id] + " " + noun_words_[c.noun_id];
}

const std::vector<uint32_t>& World::SiblingConcepts(
    uint32_t concept_id) const {
  return noun_to_concepts_[concepts_[concept_id].noun_id];
}

static float ModalityNoiseAt(const WorldConfig& config, size_t slot) {
  if (slot < config.modality_noise.size()) return config.modality_noise[slot];
  return 0.1f;
}

std::vector<float> World::RenderFeatures(const Vector& latent,
                                         size_t modality_slot,
                                         Rng* rng) const {
  // Slot 0 = image (render model 0); slots >= 2 are extra feature
  // modalities (render model slot-1). Slot 1 is text and has no renderer.
  const size_t fm = modality_slot == 0 ? 0 : modality_slot - 1;
  const RenderModel& model = render_[fm];
  const size_t cols = config_.latent_dim;
  const float noise = ModalityNoiseAt(config_, modality_slot);
  std::vector<float> out(model.raw_dim, 0.0f);
  for (size_t r = 0; r < model.raw_dim; ++r) {
    float s = 0.0f;
    const float* row = model.forward.data() + r * cols;
    for (size_t j = 0; j < cols; ++j) s += row[j] * latent[j];
    out[r] = s + noise * static_cast<float>(rng->Gaussian());
  }
  return out;
}

std::string World::CaptionFor(uint32_t concept_id, Rng* rng) const {
  const ConceptInfo& info = concepts_[concept_id];
  const float text_noise = ModalityNoiseAt(config_, 1);
  const float drop_adj =
      std::min(0.95f, config_.text_adjective_dropout + text_noise);
  const float drop_word = std::min(0.95f, text_noise);

  std::string caption = "a photo of ";
  if (!rng->Bernoulli(drop_adj)) {
    caption += adjective_words_[info.adjective_id];
    caption += " ";
  }
  // Severely noisy captions sometimes mis-describe the object entirely
  // (wrong noun) — what "useless text" means in practice.
  uint32_t noun_id = info.noun_id;
  const float mislabel = std::max(0.0f, text_noise - 0.4f);
  if (mislabel > 0.0f && rng->Bernoulli(mislabel)) {
    noun_id = static_cast<uint32_t>(rng->NextUint64(noun_words_.size()));
  }
  caption += noun_words_[noun_id];
  // One or two concept descriptor words, each subject to dropout.
  const size_t num_desc =
      std::min<size_t>(info.descriptor_words.size(), 1 + rng->NextUint64(2));
  for (size_t i = 0; i < num_desc; ++i) {
    if (rng->Bernoulli(drop_word)) continue;
    const auto& w = info.descriptor_words[rng->NextUint64(
        info.descriptor_words.size())];
    caption += " " + w;
  }
  // A filler word for texture.
  caption += " ";
  size_t num_fillers = 0;
  const char* const* fillers = BuiltinFillers(&num_fillers);
  caption += fillers[rng->NextUint64(num_fillers)];
  return caption;
}

Object World::MakeObject(uint32_t concept_id, Rng* rng) const {
  Object obj;
  obj.concept_id = concept_id;
  obj.latent = prototypes_[concept_id];
  for (auto& x : obj.latent) {
    x += config_.object_noise * static_cast<float>(rng->Gaussian());
  }
  NormalizeInPlace(&obj.latent);
  RenderModalities(&obj, rng);
  return obj;
}

Object World::ReobserveObject(const Object& object, Rng* rng) const {
  Object obj;
  obj.id = object.id;
  obj.concept_id = object.concept_id;
  obj.latent = object.latent;
  RenderModalities(&obj, rng);
  return obj;
}

void World::RenderModalities(Object* out, Rng* rng) const {
  Object& obj = *out;
  const uint32_t concept_id = obj.concept_id;
  obj.modalities.resize(num_modalities());
  // Slot 0: image.
  Payload& img = obj.modalities[0];
  img.type = ModalityType::kImage;
  img.features = RenderFeatures(obj.latent, 0, rng);
  img.text = "an image of " + ConceptName(concept_id);
  // Slot 1: text caption.
  Payload& txt = obj.modalities[1];
  txt.type = ModalityType::kText;
  txt.text = CaptionFor(concept_id, rng);
  // Extra feature modalities.
  for (size_t m = 2; m < num_modalities(); ++m) {
    Payload& p = obj.modalities[m];
    p.type = ModalityType::kAudio;
    p.features = RenderFeatures(obj.latent, m, rng);
    p.text = "a recording of " + ConceptName(concept_id);
  }
}

Result<KnowledgeBase> World::GenerateCorpus(uint64_t num_objects,
                                            const std::string& name) const {
  Rng rng(config_.seed ^ 0x5eedc0de);
  KnowledgeBase kb(Schema(), name);
  for (uint64_t i = 0; i < num_objects; ++i) {
    const uint32_t c = static_cast<uint32_t>(i % config_.num_concepts);
    MQA_ASSIGN_OR_RETURN(uint64_t id, kb.Ingest(MakeObject(c, &rng)));
    (void)id;
  }
  return kb;
}

TextQuery World::MakeTextQuery(uint32_t concept_id, Rng* rng) const {
  static constexpr const char* kTemplates[] = {
      "i would like some images of ",
      "could you show me ",
      "please find pictures of ",
      "i am looking for ",
  };
  TextQuery q;
  q.concept_id = concept_id;
  q.text = kTemplates[rng->NextUint64(4)];
  q.text += ConceptName(concept_id);
  // Sometimes add a descriptor word the user remembers.
  const ConceptInfo& info = concepts_[concept_id];
  if (!info.descriptor_words.empty() && rng->Bernoulli(0.5)) {
    q.text += " " +
              info.descriptor_words[rng->NextUint64(
                  info.descriptor_words.size())];
  }
  q.target_latent = prototypes_[concept_id];
  return q;
}

ModificationSpec World::MakeModification(uint32_t concept_id,
                                         Rng* rng) const {
  ModificationSpec mod;
  const std::vector<uint32_t>& siblings = SiblingConcepts(concept_id);
  if (siblings.size() > 1 && rng->Bernoulli(0.7)) {
    // Change the adjective, keep the noun: "like this, but <new-style>".
    uint32_t other = concept_id;
    while (other == concept_id) {
      other = siblings[rng->NextUint64(siblings.size())];
    }
    mod.kind = ModificationKind::kChangeAdjective;
    mod.target_concept = other;
    // Deliberately generic: the noun comes from the selected image, the
    // text carries only the new attribute — the composed-retrieval setting
    // where single-modality candidate lists cannot find the intersection.
    mod.text = "i like this one, but could you find some that are more " +
               adjective_words_[concepts_[other].adjective_id] + "?";
  } else {
    mod.kind = ModificationKind::kRefineSame;
    mod.target_concept = concept_id;
    mod.text = "i like this one, could you locate more " +
               ConceptName(concept_id) + " similar to it?";
  }
  return mod;
}

std::vector<float> World::ModifiedTarget(const Object& selected,
                                         const ModificationSpec& mod) const {
  if (mod.kind == ModificationKind::kRefineSame) return selected.latent;
  // Keep the selected object's noun-subspace identity; swap in the new
  // adjective direction.
  Vector target = selected.latent;
  const Vector& proto = prototypes_[mod.target_concept];
  for (uint32_t d = noun_dim_; d < config_.latent_dim; ++d) {
    target[d] = proto[d];
  }
  NormalizeInPlace(&target);
  return target;
}

std::vector<uint32_t> World::GroundTruth(
    const KnowledgeBase& kb, const std::vector<float>& target_latent,
    size_t k, std::optional<uint64_t> exclude) const {
  TopK topk(k);
  for (const Object& obj : kb.objects()) {
    if (exclude.has_value() && obj.id == *exclude) continue;
    const float d = L2Sq(target_latent.data(), obj.latent.data(),
                         target_latent.size());
    topk.Push(d, static_cast<uint32_t>(obj.id));
  }
  std::vector<uint32_t> ids;
  for (const Neighbor& n : topk.TakeSorted()) ids.push_back(n.id);
  return ids;
}

Vector World::TextToLatent(const std::string& text) const {
  Vector acc(config_.latent_dim, 0.0f);
  size_t known = 0;
  for (const std::string& token : Tokenize(text)) {
    auto it = vocab_.find(token);
    if (it != vocab_.end()) {
      for (size_t d = 0; d < acc.size(); ++d) acc[d] += it->second[d];
      ++known;
    } else {
      // Out-of-vocabulary words contribute small deterministic noise.
      const Vector v = HashWordVector(token, config_.latent_dim, 0.12f);
      for (size_t d = 0; d < acc.size(); ++d) acc[d] += v[d];
    }
  }
  if (known > 0) {
    NormalizeInPlace(&acc);
  } else {
    // No vocabulary word recognized: a low-energy latent (capped norm), so
    // downstream consumers can tell "this text carries no signal".
    const float n = Norm(acc.data(), acc.size());
    if (n > 0.3f) {
      for (auto& x : acc) x *= 0.3f / n;
    }
  }
  return acc;
}

Vector World::FeaturesToLatent(const std::vector<float>& features,
                               size_t modality_slot) const {
  const size_t fm = modality_slot == 0 ? 0 : modality_slot - 1;
  const RenderModel& model = render_[fm];
  Vector out(config_.latent_dim, 0.0f);
  if (features.size() != model.raw_dim) return out;
  for (size_t i = 0; i < out.size(); ++i) {
    const float* row = model.inverse.data() + i * model.raw_dim;
    float s = 0.0f;
    for (size_t r = 0; r < model.raw_dim; ++r) s += row[r] * features[r];
    out[i] = s;
  }
  return out;
}

const Vector* World::WordLatent(const std::string& word) const {
  auto it = vocab_.find(word);
  return it == vocab_.end() ? nullptr : &it->second;
}

}  // namespace mqa
