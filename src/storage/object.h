#ifndef MQA_STORAGE_OBJECT_H_
#define MQA_STORAGE_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mqa {

/// The kind of content held by one modality slot of an object.
enum class ModalityType : uint8_t {
  kText = 0,   ///< natural-language content (caption, synopsis, ...)
  kImage = 1,  ///< synthetic raw image features + a displayable description
  kAudio = 2,  ///< synthetic raw audio features + a displayable description
};

const char* ModalityTypeToString(ModalityType type);

/// Content of one modality of one object. Text modalities use `text`;
/// feature modalities (image/audio) carry a raw signal in `features` and a
/// human-readable `text` description used for display and LLM grounding.
struct Payload {
  ModalityType type = ModalityType::kText;
  std::string text;
  std::vector<float> features;
};

/// A multi-modal object in the knowledge base — e.g. a product with a photo
/// and a caption, or a movie with a poster and a synopsis. `concept_id` is
/// the generator's ground-truth semantic cluster, used only for evaluation.
struct Object {
  uint64_t id = 0;
  std::vector<Payload> modalities;
  uint32_t concept_id = 0;

  /// Ground-truth latent semantics (simulation bookkeeping; never visible
  /// to encoders or retrieval — used to compute exact ground truth).
  std::vector<float> latent;
};

/// Per-slot modality layout shared by all objects in a knowledge base.
struct ModalitySchema {
  std::vector<ModalityType> types;

  size_t num_modalities() const { return types.size(); }
  bool operator==(const ModalitySchema&) const = default;
};

}  // namespace mqa

#endif  // MQA_STORAGE_OBJECT_H_
