#ifndef MQA_STORAGE_WORD_LISTS_H_
#define MQA_STORAGE_WORD_LISTS_H_

#include <cstddef>

namespace mqa {

/// Shared word pools: the world model names concepts from these, and the
/// simulated LLM "knows" them as its parametric vocabulary (which is what
/// lets it hallucinate plausible-but-ungrounded answers when retrieval is
/// disabled).
const char* const* BuiltinNouns(size_t* count);
const char* const* BuiltinAdjectives(size_t* count);
const char* const* BuiltinFillers(size_t* count);

}  // namespace mqa

#endif  // MQA_STORAGE_WORD_LISTS_H_
