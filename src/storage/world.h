#ifndef MQA_STORAGE_WORLD_H_
#define MQA_STORAGE_WORLD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/knowledge_base.h"
#include "storage/object.h"
#include "vector/vector_types.h"

namespace mqa {

/// Parameters of the synthetic multi-modal world.
///
/// The world is a generative model standing in for the real image/text
/// corpora the paper demos on (fashion items, scenes, ...). Semantics live
/// in a latent space split into a *noun* subspace (what the thing is) and an
/// *adjective* subspace (its style/attribute) — so "moldy cheese" and
/// "fresh cheese" are near in noun dimensions and far in adjective
/// dimensions, which is exactly the structure the paper's round-2
/// "change the attribute" interactions exercise.
struct WorldConfig {
  uint32_t num_concepts = 50;    ///< distinct (adjective, noun) semantics
  uint32_t latent_dim = 32;      ///< total latent dimensionality
  uint32_t raw_image_dim = 64;   ///< raw feature dim of image payloads
  uint32_t words_per_concept = 5;  ///< extra descriptor words per concept
  uint32_t adjectives_per_noun = 4;  ///< concepts sharing each noun
  uint32_t num_extra_modalities = 0;  ///< audio-like slots beyond image+text

  float object_noise = 0.18f;  ///< latent spread of objects within a concept

  /// Observation noise per modality slot (slot 0 = image, 1 = text,
  /// 2.. = extra). Larger noise = less informative modality; the weight
  /// learner should then down-weight it. Missing entries default to 0.1.
  /// Defaults are skewed (captions are vaguer than pixels), mirroring the
  /// real datasets where modality importance is unequal — the property
  /// MUST's weight learning exploits.
  std::vector<float> modality_noise = {0.06f, 0.25f};

  /// Probability that a caption omits the adjective (text degradation).
  float text_adjective_dropout = 0.0f;

  uint64_t seed = 42;
};

/// A round-1 (text-only) query together with its ground-truth intent.
struct TextQuery {
  std::string text;                 ///< user utterance
  uint32_t concept_id = 0;          ///< intended concept
  std::vector<float> target_latent; ///< intended point in latent space
};

/// How the user refines the search in round 2, after selecting a result.
enum class ModificationKind {
  kRefineSame,       ///< "more like this one"
  kChangeAdjective,  ///< "like this, but <new adjective>"
};

/// A round-2 refinement: an utterance plus the semantics needed to compute
/// the ground-truth target once a result has been selected.
struct ModificationSpec {
  ModificationKind kind = ModificationKind::kRefineSame;
  uint32_t target_concept = 0;  ///< concept after modification
  std::string text;             ///< user utterance (without the selection)
};

/// The generative world: concept prototypes, a compositional vocabulary,
/// and per-modality rendering processes. Also provides the inverse maps the
/// simulated "pretrained" encoders use, and exact ground-truth computation
/// for evaluation.
class World {
 public:
  /// Builds a world from the config. Fails on degenerate parameters.
  static Result<World> Create(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  uint32_t num_concepts() const { return config_.num_concepts; }
  size_t num_modalities() const { return 2 + config_.num_extra_modalities; }

  /// Modality schema of corpora from this world: slot 0 image, slot 1 text,
  /// then extra feature (audio-like) slots.
  ModalitySchema Schema() const;

  /// Human-readable concept name, e.g. "moldy cheese".
  std::string ConceptName(uint32_t concept_id) const;

  /// Concepts that share concept_id's noun (including itself).
  const std::vector<uint32_t>& SiblingConcepts(uint32_t concept_id) const;

  /// Samples a fresh object of the given concept.
  Object MakeObject(uint32_t concept_id, Rng* rng) const;

  /// A fresh observation of an existing object: same underlying latent,
  /// new modality renderings (new image noise, new caption wording). Used
  /// to build queries whose exact answer is known.
  Object ReobserveObject(const Object& object, Rng* rng) const;

  /// Generates a corpus of `num_objects` objects with concepts assigned
  /// round-robin (so every concept is populated).
  Result<KnowledgeBase> GenerateCorpus(uint64_t num_objects,
                                       const std::string& name = "kb") const;

  /// Samples a round-1 text query for a concept.
  TextQuery MakeTextQuery(uint32_t concept_id, Rng* rng) const;

  /// Samples a round-2 modification for a dialogue that started at
  /// `concept_id`. Picks kChangeAdjective when the concept has siblings.
  ModificationSpec MakeModification(uint32_t concept_id, Rng* rng) const;

  /// Ground-truth latent intent after the user selected `selected` and
  /// uttered `mod`: a blend of the selected object's latent and the
  /// modified concept prototype.
  std::vector<float> ModifiedTarget(const Object& selected,
                                    const ModificationSpec& mod) const;

  /// Exact k-nearest objects to `target_latent` by true latent L2 distance.
  /// `exclude` (optional) removes one id (e.g. the selected object).
  std::vector<uint32_t> GroundTruth(const KnowledgeBase& kb,
                                    const std::vector<float>& target_latent,
                                    size_t k,
                                    std::optional<uint64_t> exclude = {}) const;

  // --- Inverse maps used by the simulated pretrained encoders. ---

  /// Latent estimate from a text string: mean of known-word latents;
  /// unknown words contribute small deterministic pseudo-noise.
  Vector TextToLatent(const std::string& text) const;

  /// Latent estimate from raw feature payloads: least-squares inversion of
  /// the modality's rendering matrix. `modality_slot` 0 = image, 2.. extra.
  Vector FeaturesToLatent(const std::vector<float>& features,
                          size_t modality_slot) const;

  /// Latent prototype of a concept (unit norm).
  const Vector& ConceptPrototype(uint32_t concept_id) const {
    return prototypes_[concept_id];
  }

  /// Renders a latent point into raw features of the given modality —
  /// also used by the simulated generative-image baseline (DALL·E stand-in).
  std::vector<float> RenderFeatures(const Vector& latent, size_t modality_slot,
                                    Rng* rng) const;

 private:
  World() = default;

  struct ConceptInfo {
    uint32_t noun_id = 0;
    uint32_t adjective_id = 0;
    std::vector<std::string> descriptor_words;
  };

  /// Latent vector of a vocabulary word, or nullptr if unknown.
  const Vector* WordLatent(const std::string& word) const;

  /// Fills an object's modality payloads from its latent.
  void RenderModalities(Object* out, Rng* rng) const;

  std::string CaptionFor(uint32_t concept_id, Rng* rng) const;

  WorldConfig config_;
  uint32_t noun_dim_ = 0;  // latent split: [0, noun_dim) noun, rest adjective

  std::vector<ConceptInfo> concepts_;
  std::vector<Vector> prototypes_;             // per concept, unit norm
  std::vector<std::string> noun_words_;        // per noun id
  std::vector<std::string> adjective_words_;   // per adjective id
  std::vector<Vector> noun_vectors_;           // noun-subspace direction
  std::vector<Vector> adjective_vectors_;      // adjective-subspace direction
  std::vector<std::vector<uint32_t>> noun_to_concepts_;

  // word -> latent vocabulary (nouns, adjectives, descriptors)
  std::unordered_map<std::string, Vector> vocab_;

  // Per feature-modality rendering matrix (row-major raw_dim x latent_dim)
  // and its precomputed least-squares inverse (latent_dim x raw_dim).
  struct RenderModel {
    uint32_t raw_dim = 0;
    std::vector<float> forward;
    std::vector<float> inverse;
  };
  std::vector<RenderModel> render_;  // index: feature modality (0 = image)

  friend class WorldTestPeer;
};

}  // namespace mqa

#endif  // MQA_STORAGE_WORLD_H_
