#include "storage/knowledge_base.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace mqa {

namespace {

constexpr uint32_t kKbMagic = 0x4d51414b;    // "MQAK" — v1, no tombstones
constexpr uint32_t kKbMagicV2 = 0x4d51424b;  // "MQBK" — v2, tombstone list

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(in, &n) || n > (1ULL << 32)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

void WriteFloats(std::ostream& out, const std::vector<float>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadFloats(std::istream& in, std::vector<float>* v) {
  uint64_t n = 0;
  if (!ReadPod(in, &n) || n > (1ULL << 30)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return static_cast<bool>(in);
}

}  // namespace

const char* ModalityTypeToString(ModalityType type) {
  switch (type) {
    case ModalityType::kText:
      return "text";
    case ModalityType::kImage:
      return "image";
    case ModalityType::kAudio:
      return "audio";
  }
  return "unknown";
}

Result<uint64_t> KnowledgeBase::Ingest(Object object) {
  MQA_RETURN_NOT_OK(ValidateObject(object));
  object.id = objects_.size();
  objects_.push_back(std::move(object));
  return objects_.back().id;
}

Status KnowledgeBase::ValidateObject(const Object& object) const {
  if (object.modalities.size() != schema_.num_modalities()) {
    return Status::InvalidArgument(
        "object modality count does not match schema");
  }
  for (size_t m = 0; m < schema_.num_modalities(); ++m) {
    if (object.modalities[m].type != schema_.types[m]) {
      return Status::InvalidArgument("object modality type mismatch at slot " +
                                     std::to_string(m));
    }
  }
  return Status::OK();
}

Status KnowledgeBase::Remove(uint64_t id) {
  if (id >= objects_.size()) {
    return Status::NotFound("object id out of range: " + std::to_string(id));
  }
  return deleted_.Mark(static_cast<uint32_t>(id), objects_.size());
}

KnowledgeBase KnowledgeBase::CompactLive(const std::vector<uint32_t>& remap,
                                         uint32_t live_count) const {
  KnowledgeBase compacted(schema_, name_);
  compacted.objects_.reserve(live_count);
  for (uint64_t id = 0; id < objects_.size(); ++id) {
    if (id >= remap.size() || remap[id] == kTombstonedId) continue;
    Object obj = objects_[id];
    obj.id = remap[id];
    compacted.objects_.push_back(std::move(obj));
  }
  return compacted;
}

Result<const Object*> KnowledgeBase::Get(uint64_t id) const {
  if (id >= objects_.size()) {
    return Status::NotFound("object id out of range: " + std::to_string(id));
  }
  if (IsDeleted(id)) {
    return Status::NotFound("object " + std::to_string(id) + " was deleted");
  }
  return &objects_[id];
}

Status KnowledgeBase::Save(std::ostream& out) const {
  WritePod(out, kKbMagicV2);
  WriteString(out, name_);
  WritePod(out, static_cast<uint32_t>(schema_.num_modalities()));
  for (ModalityType t : schema_.types) WritePod(out, static_cast<uint8_t>(t));
  WritePod(out, static_cast<uint64_t>(objects_.size()));
  for (const Object& obj : objects_) {
    WritePod(out, obj.id);
    WritePod(out, obj.concept_id);
    WriteFloats(out, obj.latent);
    for (const Payload& p : obj.modalities) {
      WritePod(out, static_cast<uint8_t>(p.type));
      WriteString(out, p.text);
      WriteFloats(out, p.features);
    }
  }
  std::vector<uint64_t> dead_ids;
  dead_ids.reserve(deleted_.count());
  for (uint64_t id = 0; id < objects_.size(); ++id) {
    if (IsDeleted(id)) dead_ids.push_back(id);
  }
  WritePod(out, static_cast<uint64_t>(dead_ids.size()));
  for (uint64_t id : dead_ids) WritePod(out, id);
  if (!out) return Status::IoError("failed to write knowledge base");
  return Status::OK();
}

Result<KnowledgeBase> KnowledgeBase::Load(std::istream& in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || (magic != kKbMagic && magic != kKbMagicV2)) {
    return Status::IoError("bad knowledge base header");
  }
  std::string name;
  if (!ReadString(in, &name)) return Status::IoError("truncated kb name");
  uint32_t num_m = 0;
  if (!ReadPod(in, &num_m) || num_m == 0 || num_m > 64) {
    return Status::IoError("bad modality count");
  }
  ModalitySchema schema;
  schema.types.resize(num_m);
  for (auto& t : schema.types) {
    uint8_t raw = 0;
    if (!ReadPod(in, &raw)) return Status::IoError("truncated schema");
    t = static_cast<ModalityType>(raw);
  }
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return Status::IoError("truncated object count");
  KnowledgeBase kb(schema, name);
  kb.objects_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Object obj;
    if (!ReadPod(in, &obj.id)) return Status::IoError("truncated object id");
    if (!ReadPod(in, &obj.concept_id)) {
      return Status::IoError("truncated concept id");
    }
    if (!ReadFloats(in, &obj.latent)) {
      return Status::IoError("truncated latent");
    }
    obj.modalities.resize(num_m);
    for (auto& p : obj.modalities) {
      uint8_t raw = 0;
      if (!ReadPod(in, &raw)) return Status::IoError("truncated payload type");
      p.type = static_cast<ModalityType>(raw);
      if (!ReadString(in, &p.text)) {
        return Status::IoError("truncated payload text");
      }
      if (!ReadFloats(in, &p.features)) {
        return Status::IoError("truncated payload features");
      }
    }
    kb.objects_.push_back(std::move(obj));
  }
  if (magic == kKbMagicV2) {
    uint64_t num_dead = 0;
    if (!ReadPod(in, &num_dead) || num_dead > n) {
      return Status::IoError("truncated tombstone count");
    }
    for (uint64_t i = 0; i < num_dead; ++i) {
      uint64_t dead_id = 0;
      if (!ReadPod(in, &dead_id)) return Status::IoError("truncated tombstone");
      MQA_RETURN_NOT_OK(kb.Remove(dead_id));
    }
  }
  return kb;
}

void SerializeObject(const Object& object, std::string* out) {
  std::ostringstream buffer(std::ios::binary);
  WritePod(buffer, object.concept_id);
  WriteFloats(buffer, object.latent);
  WritePod(buffer, static_cast<uint32_t>(object.modalities.size()));
  for (const Payload& p : object.modalities) {
    WritePod(buffer, static_cast<uint8_t>(p.type));
    WriteString(buffer, p.text);
    WriteFloats(buffer, p.features);
  }
  *out = std::move(buffer).str();
}

Result<Object> DeserializeObject(std::string_view bytes) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  Object obj;
  if (!ReadPod(in, &obj.concept_id)) {
    return Status::IoError("truncated object concept id");
  }
  if (!ReadFloats(in, &obj.latent)) {
    return Status::IoError("truncated object latent");
  }
  uint32_t num_m = 0;
  if (!ReadPod(in, &num_m) || num_m > 64) {
    return Status::IoError("bad object modality count");
  }
  obj.modalities.resize(num_m);
  for (auto& p : obj.modalities) {
    uint8_t raw = 0;
    if (!ReadPod(in, &raw)) return Status::IoError("truncated payload type");
    p.type = static_cast<ModalityType>(raw);
    if (!ReadString(in, &p.text)) {
      return Status::IoError("truncated payload text");
    }
    if (!ReadFloats(in, &p.features)) {
      return Status::IoError("truncated payload features");
    }
  }
  return obj;
}

}  // namespace mqa
