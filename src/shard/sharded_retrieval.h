#ifndef MQA_SHARD_SHARDED_RETRIEVAL_H_
#define MQA_SHARD_SHARDED_RETRIEVAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "graph/pipeline.h"
#include "retrieval/factory.h"
#include "retrieval/framework.h"
#include "shard/shard_options.h"

namespace mqa {

/// How one shard's participation in one fan-out ended.
enum class ShardOutcomeKind {
  kOk,           ///< responded in time; its top-k entered the merge
  kError,        ///< attempt (and hedge, if any) failed
  kTimeout,      ///< responded after its deadline slice; result dropped
  kBreakerOpen,  ///< skipped outright: its circuit breaker is open
};

const char* ShardOutcomeKindToString(ShardOutcomeKind kind);

/// Per-shard record of the most recent fan-out (tests and benches assert
/// on these instead of on process-global metrics).
struct ShardOutcome {
  ShardOutcomeKind kind = ShardOutcomeKind::kOk;
  double latency_ms = 0.0;  ///< effective latency (hedge-adjusted)
  bool hedged = false;      ///< a hedge attempt was issued
  bool hedge_won = false;   ///< the hedge beat the primary
  Status status;            ///< detail for kError / kBreakerOpen
};

struct FanoutReport {
  std::vector<ShardOutcome> shards;  ///< indexed by shard id
  size_t ok_count = 0;
};

/// Fault-isolated sharded retrieval: a RetrievalFramework over N per-shard
/// RetrievalFramework instances (ROADMAP item 3, the Stellar fan-out
/// shape). The encoded corpus is partitioned (round-robin or hash) into
/// per-shard stores; per-shard indexes build concurrently at Create time;
/// each Retrieve fans the query out across shards on an internal thread
/// pool and merges the per-shard top-k into a global top-k.
///
/// Robustness model — per-shard failure is a bounded, observable event:
///  * Fault domains: every shard attempt passes the FaultInjector point
///    `shard/<id>/search` and its own CircuitBreaker; a repeatedly failing
///    shard is skipped (not retried) while healthy shards keep serving.
///  * Hedged requests: a primary attempt slower than an adaptive threshold
///    (a percentile of the shard's own latency histogram) is raced against
///    a hedge attempt on the same shard; the faster result wins. Because
///    the repo forbids timed waits, the hedge is evaluated *after* the
///    primary completes, on virtual time: the hedge is modeled as launched
///    the moment the primary crossed the threshold, so its completion time
///    is threshold + hedge_latency — equivalent schedules, zero timers.
///  * Partial-result quorum: per-shard deadline slices are derived from
///    the query deadline; a query succeeds when >= quorum shards respond
///    in time. Missing shards surface as stats.shards_ok < shards_total
///    (a degradation note upstream), never as silently truncated results.
///
/// Thread-safety: like every RetrievalFramework, Retrieve is not
/// thread-safe (callers serialize, e.g. the server's search batcher). The
/// internal fan-out pool is an implementation detail; per-query completion
/// is tracked with a function-local Mutex/CondVar (a leaf in the lock
/// hierarchy: no other lock is ever held while it is acquired, and shard
/// attempts acquire it only after all retrieval work is done).
class ShardedRetrieval : public RetrievalFramework {
 public:
  /// Partitions `corpus`, builds one `framework_name` framework per shard
  /// (concurrently, on a build-scoped pool) and assembles the fan-out
  /// layer. `options.clock` (null = SystemClock) is captured for deadline
  /// slices, latency measurement and breaker cool-downs. `report`
  /// (optional) receives aggregate build statistics.
  static Result<std::unique_ptr<ShardedRetrieval>> Create(
      const std::string& framework_name,
      std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
      const IndexConfig& index_config, const ShardOptions& options,
      BuildReport* report = nullptr);

  /// Fans out, merges, and enforces the quorum. Returns kDeadlineExceeded
  /// when the query's deadline already passed, kUnavailable when fewer
  /// than quorum shards responded; otherwise the merged result, with
  /// stats.shards_total/shards_ok recording coverage.
  Result<RetrievalResult> Retrieve(const RetrievalQuery& query,
                                   const SearchParams& params) override;

  std::string name() const override { return "sharded:" + inner_name_; }
  const VectorSchema& schema() const override { return corpus_->schema(); }
  const std::vector<float>& weights() const override { return weights_; }
  Status SetWeights(std::vector<float> weights) override;

  /// Propagates the clock to every shard framework. Breaker cool-downs
  /// keep the Create-time options.clock (breakers are not re-clockable),
  /// so configure the clock through ShardOptions when testing breakers.
  void SetClock(Clock* clock) override;

  size_t num_shards() const { return shards_.size(); }
  size_t quorum() const { return options_.quorum; }

  /// Tombstones one *global* corpus id: marked here (the merge skips it
  /// even if a shard raced ahead) and routed to the owning shard's
  /// framework, which excludes the local row from its searches.
  Status Remove(uint32_t id) override;

  /// True when every shard's framework can ingest live (MUST over a
  /// mutable index kind).
  bool SupportsLiveIngestion() const;

  /// Live ingestion under sharding: after the caller appended one encoded
  /// row to the shared corpus store, routes it to the shard with the
  /// fewest *live* objects (so deletes re-balance future inserts), appends
  /// the row to that shard's store and links it into the shard's index.
  Status IngestAppended(const GraphBuildConfig& config);

  /// Number of live (non-tombstoned) objects on one shard.
  size_t shard_live_size(size_t shard) const {
    return shards_[shard]->global_ids.size() -
           shards_[shard]->framework->num_tombstones();
  }

  /// Local->global id map of one shard (test/bench introspection).
  const std::vector<uint32_t>& shard_global_ids(size_t shard) const {
    return shards_[shard]->global_ids;
  }

  BreakerState shard_breaker_state(size_t shard) const {
    return shards_[shard]->breaker->state();
  }

  /// Per-shard accounting of the most recent Retrieve. Valid on the
  /// calling thread until the next Retrieve (same non-thread-safe contract
  /// as Retrieve itself).
  const FanoutReport& last_report() const { return last_report_; }

 private:
  /// One fault domain: an independent slice of the corpus with its own
  /// framework, breaker, latency histogram and metrics.
  struct Shard {
    std::shared_ptr<VectorStore> store;  ///< mutable: live ingestion appends
    std::vector<uint32_t> global_ids;  ///< local row id -> corpus id
    std::unique_ptr<RetrievalFramework> framework;
    std::unique_ptr<CircuitBreaker> breaker;
    /// Per-instance latency distribution feeding the adaptive hedge
    /// threshold (the process-global registry would bleed state across
    /// instances and tests).
    Histogram latency_hist{Histogram::DefaultLatencyBoundsMs()};
    std::string fault_point;  ///< "shard/<id>/search"
  };

  /// Everything one shard contributes to one fan-out. Each slot is
  /// written by exactly one pool task and read by the fan-out caller only
  /// after the completion mutex round-trip (which publishes the writes).
  struct ShardAttempt {
    ShardOutcome outcome;
    RetrievalResult result;  ///< meaningful when outcome.kind == kOk
  };

  ShardedRetrieval() = default;

  /// Runs one shard's gate -> primary -> (maybe) hedge -> classify
  /// sequence. Never touches state shared with other shards.
  void RunShardAttempt(size_t shard_index, const RetrievalQuery& query,
                       const SearchParams& params, int64_t budget_micros,
                       ShardAttempt* out);

  ShardOptions options_;
  std::string inner_name_;  ///< the per-shard framework name ("must", ...)
  std::shared_ptr<const VectorStore> corpus_;
  std::vector<float> weights_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global id -> (shard index, local row id); grows with live ingestion.
  std::vector<std::pair<uint32_t, uint32_t>> owner_;
  std::unique_ptr<ThreadPool> fanout_pool_;
  FanoutReport last_report_;

  // Aggregate metrics (process-global; resolved once at Create).
  Counter* fanouts_ = nullptr;
  Counter* degraded_ = nullptr;         ///< merged with missing shards
  Counter* quorum_failures_ = nullptr;  ///< fan-outs below quorum
  Counter* hedges_ = nullptr;
  Counter* hedge_wins_ = nullptr;
  Counter* breaker_skips_ = nullptr;
  Counter* shard_errors_ = nullptr;
  Counter* shard_timeouts_ = nullptr;
  Histogram* fanout_ms_ = nullptr;
};

}  // namespace mqa

#endif  // MQA_SHARD_SHARDED_RETRIEVAL_H_
