#include "shard/sharded_retrieval.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/timer.h"
#include "common/trace.h"
#include "retrieval/must.h"

namespace mqa {

namespace {

/// Multiplicative (Fibonacci) id hash for the "hash" partition scheme.
size_t HashShard(uint32_t id, size_t num_shards) {
  return static_cast<size_t>(id * 2654435761u) % num_shards;
}

size_t BuildConcurrency(size_t num_shards) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max<size_t>(1, std::min(num_shards, hw));
}

}  // namespace

const char* ShardOutcomeKindToString(ShardOutcomeKind kind) {
  switch (kind) {
    case ShardOutcomeKind::kOk:
      return "ok";
    case ShardOutcomeKind::kError:
      return "error";
    case ShardOutcomeKind::kTimeout:
      return "timeout";
    case ShardOutcomeKind::kBreakerOpen:
      return "breaker-open";
  }
  return "unknown";
}

Result<std::unique_ptr<ShardedRetrieval>> ShardedRetrieval::Create(
    const std::string& framework_name,
    std::shared_ptr<const VectorStore> corpus, std::vector<float> weights,
    const IndexConfig& index_config, const ShardOptions& options,
    BuildReport* report) {
  if (corpus == nullptr || corpus->size() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("shard.num_shards must be > 0");
  }
  const bool hash_partition = options.partition == "hash";
  if (!hash_partition && options.partition != "round-robin") {
    return Status::InvalidArgument("unknown shard partition scheme: " +
                                   options.partition);
  }

  Span span("shard/build");
  Timer build_timer;

  std::unique_ptr<ShardedRetrieval> fw(new ShardedRetrieval());
  fw->options_ = options;
  fw->inner_name_ = framework_name;
  fw->corpus_ = corpus;
  fw->weights_ = NormalizeWeights(std::move(weights));

  // More shards than objects would leave some empty; clamp first.
  fw->options_.num_shards =
      std::min<size_t>(fw->options_.num_shards, corpus->size());
  const size_t requested = fw->options_.num_shards;

  // --- Partition the encoded corpus into per-shard stores. ---
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::shared_ptr<VectorStore>> stores;  // mutable during fill
  shards.reserve(requested);
  stores.reserve(requested);
  for (size_t s = 0; s < requested; ++s) {
    auto shard = std::make_unique<Shard>();
    auto store = std::make_shared<VectorStore>(corpus->schema());
    shard->store = store;
    stores.push_back(std::move(store));
    shards.push_back(std::move(shard));
  }
  for (uint32_t id = 0; id < corpus->size(); ++id) {
    const size_t s = hash_partition ? HashShard(id, requested)
                                    : static_cast<size_t>(id) % requested;
    MQA_RETURN_NOT_OK(stores[s]->Add(corpus->Row(id)).status());
    shards[s]->global_ids.push_back(id);
  }
  // A skewed hash on a tiny corpus can leave a shard empty; drop empties
  // (an empty fault domain isolates nothing and cannot build an index).
  shards.erase(std::remove_if(shards.begin(), shards.end(),
                              [](const std::unique_ptr<Shard>& s) {
                                return s->global_ids.empty();
                              }),
               shards.end());
  fw->options_.num_shards = shards.size();
  fw->options_.quorum = std::max<size_t>(
      1, std::min(fw->options_.quorum, fw->options_.num_shards));
  if (!(fw->options_.deadline_fraction > 0.0) ||
      fw->options_.deadline_fraction > 1.0) {
    fw->options_.deadline_fraction = 1.0;
  }

  // --- Build per-shard frameworks concurrently. ---
  // A dedicated build pool, not DefaultThreadPool(): the inner index
  // builds call ParallelFor on the default pool, and ParallelFor must not
  // be entered from a task already running on that same pool.
  const size_t num_shards = shards.size();
  std::vector<Result<std::unique_ptr<RetrievalFramework>>> built;
  built.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    built.emplace_back(Status::Internal("shard build did not run"));
  }
  std::vector<BuildReport> shard_reports(num_shards);
  {
    ThreadPool build_pool(BuildConcurrency(num_shards));
    std::vector<std::future<void>> futures;
    futures.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      Shard* shard = shards[s].get();
      futures.push_back(build_pool.Submit(
          [s, shard, &framework_name, &fw, &index_config, &built,
           &shard_reports] {
            built[s] = CreateRetrievalFramework(framework_name, shard->store,
                                                fw->weights_, index_config,
                                                &shard_reports[s]);
          }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (!built[s].ok()) return built[s].status();
    shards[s]->framework = std::move(built[s]).Value();
    if (options.clock != nullptr) {
      shards[s]->framework->SetClock(options.clock);
    }
    CircuitBreakerConfig bc;
    bc.failure_threshold = fw->options_.breaker_failure_threshold;
    bc.open_duration_ms = fw->options_.breaker_open_ms;
    bc.half_open_successes = fw->options_.breaker_half_open_successes;
    shards[s]->breaker =
        std::make_unique<CircuitBreaker>(bc, fw->options_.clock);
    shards[s]->fault_point = "shard/" + std::to_string(s) + "/search";
  }
  fw->shards_ = std::move(shards);
  fw->owner_.assign(corpus->size(), {0, 0});
  for (size_t s = 0; s < fw->shards_.size(); ++s) {
    const std::vector<uint32_t>& gids = fw->shards_[s]->global_ids;
    for (uint32_t local = 0; local < gids.size(); ++local) {
      fw->owner_[gids[local]] = {static_cast<uint32_t>(s), local};
    }
  }
  if (options.clock != nullptr) {
    fw->RetrievalFramework::SetClock(options.clock);
  }

  const size_t fanout_threads =
      fw->options_.fanout_threads > 0 ? fw->options_.fanout_threads
                                      : BuildConcurrency(num_shards);
  fw->fanout_pool_ = std::make_unique<ThreadPool>(fanout_threads);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  fw->fanouts_ = metrics.GetCounter("shard/fanouts");
  fw->degraded_ = metrics.GetCounter("shard/degraded_fanouts");
  fw->quorum_failures_ = metrics.GetCounter("shard/quorum_failures");
  fw->hedges_ = metrics.GetCounter("shard/hedges");
  fw->hedge_wins_ = metrics.GetCounter("shard/hedge_wins");
  fw->breaker_skips_ = metrics.GetCounter("shard/breaker_skips");
  fw->shard_errors_ = metrics.GetCounter("shard/shard_errors");
  fw->shard_timeouts_ = metrics.GetCounter("shard/shard_timeouts");
  fw->fanout_ms_ = metrics.GetHistogram("shard/fanout_ms");

  if (report != nullptr) {
    *report = BuildReport{};
    report->algorithm = index_config.algorithm + " (" +
                        std::to_string(num_shards) + " shards, " +
                        framework_name + ")";
    report->total_seconds = build_timer.ElapsedSeconds();
    double degree_sum = 0.0;
    for (const BuildReport& r : shard_reports) {
      degree_sum += r.avg_degree;
      report->max_degree = std::max(report->max_degree, r.max_degree);
    }
    report->avg_degree = degree_sum / static_cast<double>(num_shards);
  }
  return fw;
}

Status ShardedRetrieval::SetWeights(std::vector<float> weights) {
  if (weights.size() != corpus_->schema().num_modalities()) {
    return Status::InvalidArgument("weights do not match corpus schema");
  }
  std::vector<float> normalized = NormalizeWeights(std::move(weights));
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MQA_RETURN_NOT_OK(shard->framework->SetWeights(normalized));
  }
  weights_ = std::move(normalized);
  return Status::OK();
}

void ShardedRetrieval::SetClock(Clock* clock) {
  RetrievalFramework::SetClock(clock);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->framework->SetClock(clock);
  }
}

Status ShardedRetrieval::Remove(uint32_t id) {
  if (id >= owner_.size()) {
    return Status::NotFound("global id out of range: " + std::to_string(id));
  }
  // Mark globally first (double-delete detection lives here), then route
  // to the owning shard so its searches stop surfacing the local row.
  MQA_RETURN_NOT_OK(MarkRemoved(id, owner_.size()));
  const auto [shard_index, local_id] = owner_[id];
  return shards_[shard_index]->framework->Remove(local_id);
}

bool ShardedRetrieval::SupportsLiveIngestion() const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    auto* must = dynamic_cast<MustFramework*>(shard->framework.get());
    if (must == nullptr || !must->SupportsLiveIngestion()) return false;
  }
  return true;
}

Status ShardedRetrieval::IngestAppended(const GraphBuildConfig& config) {
  if (corpus_->size() == 0 || corpus_->size() <= owner_.size()) {
    return Status::FailedPrecondition(
        "append the encoded vector to the shared corpus first");
  }
  const uint32_t global_id = corpus_->size() - 1;
  if (corpus_->size() != owner_.size() + 1) {
    return Status::FailedPrecondition(
        "live ingestion must append one row at a time");
  }

  // Route to the shard with the fewest live objects: deletes create slack
  // and inserts fill it, keeping the fan-out balanced over a full day of
  // churn instead of drifting with the original partition.
  size_t target = 0;
  size_t target_live = shard_live_size(0);
  for (size_t s = 1; s < shards_.size(); ++s) {
    const size_t live = shard_live_size(s);
    if (live < target_live) {
      target = s;
      target_live = live;
    }
  }
  Shard& shard = *shards_[target];
  auto* must = dynamic_cast<MustFramework*>(shard.framework.get());
  if (must == nullptr || !must->SupportsLiveIngestion()) {
    return Status::Unimplemented("shard " + std::to_string(target) +
                                 " cannot ingest live (framework '" +
                                 shard.framework->name() + "')");
  }
  const uint32_t local_id = shard.store->size();
  MQA_RETURN_NOT_OK(shard.store->Add(corpus_->Row(global_id)).status());
  MQA_RETURN_NOT_OK(must->IngestAppended(config));
  // Publish the mapping only after the index accepted the row, so a
  // failed ingest never leaves a merge-able id pointing at a ghost.
  shard.global_ids.push_back(global_id);
  owner_.emplace_back(static_cast<uint32_t>(target), local_id);
  return Status::OK();
}

void ShardedRetrieval::RunShardAttempt(size_t shard_index,
                                       const RetrievalQuery& query,
                                       const SearchParams& params,
                                       int64_t budget_micros,
                                       ShardAttempt* out) {
  Shard& shard = *shards_[shard_index];
  Clock* clk = clock();

  // Gate: an open breaker skips the shard outright — no retry pressure on
  // a known-bad fault domain, healthy shards carry the query.
  Status admitted = shard.breaker->Admit();
  if (!admitted.ok()) {
    out->outcome.kind = ShardOutcomeKind::kBreakerOpen;
    out->outcome.status = admitted;
    breaker_skips_->Increment();
    return;
  }

  // Results are local to the shard's row space; map filter decisions from
  // global ids so attribute constraints keep working under sharding.
  SearchParams local_params = params;
  if (params.filter) {
    const std::vector<uint32_t>& gids = shard.global_ids;
    SearchFilter global_filter = params.filter;
    local_params.filter = [global_filter, &gids](uint32_t local_id) {
      return local_id < gids.size() && global_filter(gids[local_id]);
    };
  }

  // One request against this shard's data: fault point first (the shard's
  // injectable failure domain), then the real per-shard search. Elapsed
  // time flows through the framework clock, so injected latency spikes on
  // a MockClock are observed exactly.
  auto attempt_once = [&](Result<RetrievalResult>* result) -> double {
    const int64_t start = clk->NowMicros();
    const Status injected = FaultInjector::Global().Check(shard.fault_point);
    if (injected.ok()) {
      *result = shard.framework->Retrieve(query, local_params);
    } else {
      *result = injected;
    }
    return static_cast<double>(clk->NowMicros() - start) / 1e3;
  };

  // Adaptive hedge threshold: a percentile of this shard's own history,
  // frozen before the primary attempt so the spike being judged does not
  // move its own bar.
  double threshold_ms = -1.0;
  if (options_.hedge_percentile > 0.0 &&
      shard.latency_hist.count() >=
          static_cast<uint64_t>(options_.hedge_min_samples)) {
    threshold_ms =
        shard.latency_hist.Snapshot().Percentile(options_.hedge_percentile);
  }

  Result<RetrievalResult> primary = Status::Internal("unset");
  const double primary_ms = attempt_once(&primary);
  shard.latency_hist.Record(primary_ms);

  Result<RetrievalResult> winner = std::move(primary);
  double effective_ms = primary_ms;
  // Hedge: the primary crossed the shard's adaptive threshold, so a real
  // deployment would have a second request in flight since threshold_ms.
  // Evaluate that race on virtual time (see the class comment): hedge
  // completion = threshold + hedge latency; the faster outcome wins.
  if (threshold_ms >= 0.0 && primary_ms > threshold_ms) {
    out->outcome.hedged = true;
    hedges_->Increment();
    Result<RetrievalResult> hedge = Status::Internal("unset");
    const double hedge_ms = attempt_once(&hedge);
    const double hedge_done_ms = threshold_ms + hedge_ms;
    if (hedge.ok() && (!winner.ok() || hedge_done_ms < effective_ms)) {
      winner = std::move(hedge);
      effective_ms = hedge_done_ms;
      out->outcome.hedge_won = true;
      hedge_wins_->Increment();
    }
  }
  out->outcome.latency_ms = effective_ms;

  if (!winner.ok()) {
    out->outcome.kind = ShardOutcomeKind::kError;
    out->outcome.status = winner.status();
    shard_errors_->Increment();
    // Only retryable statuses count as shard failures inside Record.
    shard.breaker->Record(winner.status());
    return;
  }
  // Deadline slice: a result arriving after this shard's budget cannot be
  // waited for by the merge — it is dropped, and the miss feeds the
  // breaker like any other failure of the fault domain.
  if (budget_micros > 0 &&
      effective_ms * 1e3 > static_cast<double>(budget_micros)) {
    out->outcome.kind = ShardOutcomeKind::kTimeout;
    out->outcome.status = Status::DeadlineExceeded(
        "shard " + std::to_string(shard_index) + " exceeded its deadline slice");
    shard_timeouts_->Increment();
    shard.breaker->RecordFailure();
    return;
  }
  shard.breaker->RecordSuccess();
  out->outcome.kind = ShardOutcomeKind::kOk;
  out->result = std::move(winner).Value();
}

Result<RetrievalResult> ShardedRetrieval::Retrieve(
    const RetrievalQuery& query, const SearchParams& params) {
  Span span("shard/fanout");
  fanouts_->Increment();
  Clock* clk = clock();
  const int64_t start_micros = clk->NowMicros();

  // Per-shard deadline slice: a fraction of the remaining budget, so the
  // merge and answer stages keep headroom after the slowest shard.
  int64_t budget_micros = 0;
  if (query.deadline_micros > 0) {
    const int64_t remaining = query.deadline_micros - start_micros;
    if (remaining <= 0) {
      return Status::DeadlineExceeded(
          "query deadline expired before shard fan-out");
    }
    budget_micros = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(remaining) *
                                options_.deadline_fraction));
  }

  // Tombstoned global ids are excluded twice: the composed filter keeps
  // them out of every shard search, and the merge below drops any that
  // slip through (e.g. a shard whose own tombstones lag behind).
  const SearchParams effective = WithoutTombstones(params);

  // Fan out one task per shard. Completion is a counter + CondVar (the
  // DAG scheduler idiom); `state.mu` is a leaf mutex — tasks take it only
  // after all shard work is done, and never while holding another lock.
  struct FanoutState {
    Mutex mu;
    CondVar cv;
    size_t pending MQA_GUARDED_BY(mu) = 0;
  } state;
  const size_t num_shards = shards_.size();
  std::vector<ShardAttempt> attempts(num_shards);
  {
    MutexLock lock(&state.mu);
    state.pending = num_shards;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    fanout_pool_->Post(
        [this, s, &query, &effective, budget_micros, &state, &attempts] {
          RunShardAttempt(s, query, effective, budget_micros, &attempts[s]);
          MutexLock lock(&state.mu);
          --state.pending;
          state.cv.NotifyAll();
        });
  }
  {
    MutexLock lock(&state.mu);
    while (state.pending > 0) state.cv.Wait(&state.mu);
  }

  // Merge the contributing shards' top-k into the global top-k, mapping
  // local row ids back to corpus ids, and fold their stats together.
  RetrievalResult merged;
  TopK topk(params.k);
  size_t ok_count = 0;
  FanoutReport report;
  report.shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ShardAttempt& attempt = attempts[s];
    report.shards.push_back(attempt.outcome);
    if (attempt.outcome.kind != ShardOutcomeKind::kOk) continue;
    ++ok_count;
    merged.stats.Merge(attempt.result.stats);
    const std::vector<uint32_t>& gids = shards_[s]->global_ids;
    for (const Neighbor& n : attempt.result.neighbors) {
      // Bounds guard: a shard mid-ingestion could briefly know rows the
      // global map does not; deleted ids never reach the caller.
      if (n.id >= gids.size()) continue;
      const uint32_t gid = gids[n.id];
      if (tombstones().IsDeleted(gid)) continue;
      topk.Push(n.distance, gid);
    }
  }
  report.ok_count = ok_count;
  last_report_ = std::move(report);
  merged.stats.shards_total = static_cast<uint32_t>(num_shards);
  merged.stats.shards_ok = static_cast<uint32_t>(ok_count);

  merged.latency_ms =
      static_cast<double>(clk->NowMicros() - start_micros) / 1e3;
  fanout_ms_->Record(merged.latency_ms);

  if (ok_count < options_.quorum) {
    quorum_failures_->Increment();
    return Status::Unavailable(
        "shard quorum not met: " + std::to_string(ok_count) + " of " +
        std::to_string(num_shards) + " shards responded (quorum " +
        std::to_string(options_.quorum) + ")");
  }
  if (ok_count < num_shards) degraded_->Increment();
  merged.neighbors = topk.TakeSorted();
  return merged;
}

}  // namespace mqa
