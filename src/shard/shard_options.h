#ifndef MQA_SHARD_SHARD_OPTIONS_H_
#define MQA_SHARD_SHARD_OPTIONS_H_

#include <cstddef>
#include <string>

namespace mqa {

class Clock;

/// Knobs of the fault-isolated sharded retrieval layer (src/shard/).
/// Disabled by default: the coordinator builds the single-index framework
/// exactly as before. When enabled, the encoded corpus is partitioned into
/// `num_shards` independent per-shard frameworks; queries fan out on a
/// thread pool and merge per-shard top-k, with per-shard circuit breakers,
/// hedged requests and a partial-result quorum bounding the blast radius
/// of a slow or faulty shard.
struct ShardOptions {
  bool enable = false;
  size_t num_shards = 4;  ///< clamped to the corpus size at build time

  /// Minimum shards that must respond in time for a query to succeed
  /// (clamped to [1, num_shards]). Fewer responders => kUnavailable; more
  /// but not all => success with a shard-coverage degradation note.
  size_t quorum = 1;

  /// Corpus partitioning: "round-robin" (id % num_shards — balanced by
  /// construction) or "hash" (multiplicative id hash — models arbitrary
  /// placement).
  std::string partition = "round-robin";

  /// Hedging: when a shard's primary attempt exceeds this percentile of
  /// its own latency histogram, a hedge attempt is issued against the same
  /// shard and the faster of the two wins. 0 disables hedging; thresholds
  /// only activate once the histogram holds `hedge_min_samples` samples.
  double hedge_percentile = 95.0;
  size_t hedge_min_samples = 16;

  /// Fraction of the query's remaining deadline budget granted to each
  /// shard attempt (per-shard deadline slice). Only applies to queries
  /// carrying a deadline.
  double deadline_fraction = 0.5;

  /// Fan-out pool width (0 = min(num_shards, hardware)). Chaos tests set 1
  /// so shard attempts execute sequentially and MockClock time is exact.
  size_t fanout_threads = 0;

  // Per-shard circuit breaker: a repeatedly failing shard is skipped (not
  // retried) while its cool-down runs, so healthy shards keep serving.
  int breaker_failure_threshold = 5;
  double breaker_open_ms = 1000.0;
  int breaker_half_open_successes = 2;

  /// Non-owning clock driving deadline slices, latency measurement and
  /// breaker cool-downs. Null = the real SystemClock.
  Clock* clock = nullptr;
};

}  // namespace mqa

#endif  // MQA_SHARD_SHARD_OPTIONS_H_
